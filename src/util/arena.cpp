#include "util/arena.h"

#include <cassert>
#include <cstdint>

namespace cea::util {

void Arena::reserve(std::size_t capacity_bytes) {
  if (capacity_bytes <= capacity_) return;
  // Moving the block would dangle prior allocations; growth is only legal
  // while nothing is live.
  assert(used_ == 0 && "Arena::reserve with live allocations");
  block_ = std::make_unique<std::byte[]>(capacity_bytes);
  capacity_ = capacity_bytes;
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  assert(align != 0 && (align & (align - 1)) == 0 && "align not a power of 2");
  const std::uintptr_t base =
      reinterpret_cast<std::uintptr_t>(block_.get()) + used_;
  const std::size_t padding = (align - base % align) % align;
  if (used_ + padding + bytes <= capacity_) {
    std::byte* p = block_.get() + used_ + padding;
    used_ += padding + bytes;
    if (used_ > high_water_) high_water_ = used_;
    return p;
  }
  // Exhausted: a mis-sized arena is a bug the owner should fix (the assert
  // fires in debug builds); in release we stay correct via a dedicated
  // heap block and record the event so overflow_count() exposes it.
  assert(false && "Arena capacity exhausted (reserve more up front)");
  ++overflow_count_;
  auto block = std::make_unique<std::byte[]>(bytes + align);
  const std::uintptr_t raw = reinterpret_cast<std::uintptr_t>(block.get());
  std::byte* p = block.get() + (align - raw % align) % align;
  overflow_blocks_.push_back(std::move(block));
  return p;
}

void Arena::reset() noexcept {
  used_ = 0;
  overflow_blocks_.clear();
}

}  // namespace cea::util
