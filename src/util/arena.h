#pragma once

// Bump allocator for solver hot paths (the LoopModels unmanaged-tableau
// idiom): capacity is reserved up front, allocation is a pointer bump, and
// reset() recycles the whole block without touching the heap. Owners size
// the arena for their worst case once (warmup), after which a steady-state
// solve performs zero heap allocation — the property bench/perf_solver
// verifies via overflow_count().
//
// Exhaustion contract: running past capacity asserts in debug builds
// (the owner mis-sized its arena); release builds fall back to a dedicated
// heap block so results stay correct, and count the event in
// overflow_count() so benches and audits can detect the regression.
// Overflow blocks are released by the next reset().
//
// Not thread-safe: one arena per owner (solver instance or thread_local).

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

namespace cea::util {

class Arena {
 public:
  Arena() = default;
  explicit Arena(std::size_t capacity_bytes) { reserve(capacity_bytes); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Grow the backing block to at least `capacity_bytes`. Existing
  /// allocations stay valid only when the block does not move, so owners
  /// must reserve before handing out pointers (typically: reserve, then
  /// reset + allocate per solve). Reserving below the current capacity is
  /// a no-op.
  void reserve(std::size_t capacity_bytes);

  /// `bytes` of storage aligned to `align` (a power of two). Uninitialized.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  /// Uninitialized array of `count` Ts (T must be trivially destructible —
  /// nothing here runs destructors).
  template <typename T>
  T* alloc_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Recycle every allocation (pointers become dangling) and free any
  /// overflow blocks. Capacity and high-water statistics persist.
  void reset() noexcept;

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t used() const noexcept { return used_; }
  /// Largest used() observed since construction — the number to reserve.
  std::size_t high_water() const noexcept { return high_water_; }
  /// Allocations that did not fit the reserved block since construction
  /// (not reset by reset()): 0 after warmup means steady-state solves are
  /// allocation-free.
  std::size_t overflow_count() const noexcept { return overflow_count_; }

 private:
  std::unique_ptr<std::byte[]> block_;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  std::size_t overflow_count_ = 0;
  std::vector<std::unique_ptr<std::byte[]>> overflow_blocks_;
};

}  // namespace cea::util
