#include "util/check.h"

#include <mutex>
#include <utility>

namespace cea::audit {
namespace {

std::mutex& collector_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::vector<Violation>& collector() {
  static std::vector<Violation> violations;
  return violations;
}

}  // namespace

void record(Violation violation) {
  const std::lock_guard<std::mutex> lock(collector_mutex());
  collector().push_back(std::move(violation));
}

std::size_t violation_count() noexcept {
  const std::lock_guard<std::mutex> lock(collector_mutex());
  return collector().size();
}

std::vector<Violation> drain() {
  const std::lock_guard<std::mutex> lock(collector_mutex());
  return std::exchange(collector(), {});
}

void clear() noexcept {
  const std::lock_guard<std::mutex> lock(collector_mutex());
  collector().clear();
}

}  // namespace cea::audit
