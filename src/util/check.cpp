#include "util/check.h"

#include <algorithm>
#include <mutex>
#include <utility>

namespace cea::audit {
namespace {

std::mutex& collector_mutex() {
  static std::mutex mutex;
  return mutex;
}

struct Collector {
  std::vector<Violation> stored;
  std::size_t dropped = 0;
  std::size_t capacity = kDefaultCapacity;
};

Collector& collector() {
  static Collector instance;
  return instance;
}

}  // namespace

void record(Violation violation) {
  const std::lock_guard<std::mutex> lock(collector_mutex());
  Collector& c = collector();
  if (c.stored.size() >= c.capacity) {
    ++c.dropped;
    return;
  }
  c.stored.push_back(std::move(violation));
}

std::size_t violation_count() noexcept {
  const std::lock_guard<std::mutex> lock(collector_mutex());
  return collector().stored.size();
}

std::size_t dropped_count() noexcept {
  const std::lock_guard<std::mutex> lock(collector_mutex());
  return collector().dropped;
}

void set_capacity(std::size_t capacity) noexcept {
  const std::lock_guard<std::mutex> lock(collector_mutex());
  collector().capacity = std::max<std::size_t>(capacity, 1);
}

std::size_t capacity() noexcept {
  const std::lock_guard<std::mutex> lock(collector_mutex());
  return collector().capacity;
}

std::vector<Violation> drain() {
  const std::lock_guard<std::mutex> lock(collector_mutex());
  Collector& c = collector();
  c.dropped = 0;
  return std::exchange(c.stored, {});
}

void clear() noexcept {
  const std::lock_guard<std::mutex> lock(collector_mutex());
  Collector& c = collector();
  c.stored.clear();
  c.dropped = 0;
}

}  // namespace cea::audit
