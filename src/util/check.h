#pragma once

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

namespace cea::audit {

/// Sentinel for a check site with no edge/slot context (e.g. the Tsallis
/// solver, which runs per block, not per slot).
inline constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

/// One recorded invariant violation. Checks never abort the run: the
/// simulator keeps going and the harness (test, bench gate) inspects the
/// collector afterwards, so a single broken slot yields a full-context
/// report instead of a core dump mid-horizon.
struct Violation {
  std::string site;     ///< static identifier, e.g. "trader.primal_box"
  std::string message;  ///< formatted detail with the offending values
  std::size_t edge = kNoIndex;
  std::size_t slot = kNoIndex;
  double quantity = 0.0;  ///< offending value / residual magnitude
};

/// True when the build was configured with -DCEA_AUDIT=ON, i.e. the
/// CEA_CHECK sites below are compiled in.
constexpr bool enabled() noexcept {
#if defined(CEA_AUDIT)
  return true;
#else
  return false;
#endif
}

/// Default bound on stored violations (see set_capacity).
inline constexpr std::size_t kDefaultCapacity = 4096;

/// Append to the process-wide collector (mutex-guarded; contention only on
/// an actual violation or when the reporter drains, never on the check
/// fast path). Once the collector holds capacity() violations, further
/// records are counted but not stored — a pathological run (one violation
/// per slot per edge over a long horizon) reports a bounded sample plus an
/// exact dropped count instead of growing without bound.
void record(Violation violation);

/// Number of violations currently stored (<= capacity()).
std::size_t violation_count() noexcept;

/// Violations recorded but not stored since the last drain()/clear()
/// because the collector was full.
std::size_t dropped_count() noexcept;

/// Bound on stored violations. Setting a smaller capacity than currently
/// stored keeps the existing entries; it only affects future records.
/// Zero is clamped to one. Test hook; defaults to kDefaultCapacity.
void set_capacity(std::size_t capacity) noexcept;
std::size_t capacity() noexcept;

/// Snapshot-and-clear the collector (stored violations and the dropped
/// count).
std::vector<Violation> drain();

/// Discard all recorded violations and the dropped count (test setup).
void clear() noexcept;

}  // namespace cea::audit

/// CEA_CHECK(cond, site, edge, slot, quantity, message_stream)
///
/// Runtime invariant check compiled in only under -DCEA_AUDIT=ON; expands
/// to nothing otherwise (zero cost when off — the condition is not even
/// evaluated). On failure it records a Violation with (edge, slot,
/// quantity) context; `message_stream` is an ostream expression, e.g.
///   CEA_CHECK(x >= 0.0, "trader.dual_nonneg", edge, t, x,
///             "lambda " << x << " < 0");
/// and is only evaluated when the condition fails.
#if defined(CEA_AUDIT)
#define CEA_CHECK(cond, site, edge, slot, quantity, message_stream)     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream cea_check_stream_;                             \
      cea_check_stream_ << message_stream;                              \
      ::cea::audit::record({(site), cea_check_stream_.str(),            \
                            static_cast<std::size_t>(edge),             \
                            static_cast<std::size_t>(slot),             \
                            static_cast<double>(quantity)});            \
    }                                                                   \
  } while (false)
#else
#define CEA_CHECK(cond, site, edge, slot, quantity, message_stream) \
  do {                                                              \
  } while (false)
#endif
