#include "util/cpu.h"

#include <cstdlib>
#include <cstring>

namespace cea::util {
namespace {

/// CEA_FORCE_ISA caps the reported feature level: "scalar" disables every
/// SIMD path, "avx2" hides AVX-512, "avx512" (or unset) hides nothing.
enum class IsaCap { kScalar, kAvx2, kAvx512 };

IsaCap isa_cap() noexcept {
  static const IsaCap cap = [] {
    const char* env = std::getenv("CEA_FORCE_ISA");
    if (env == nullptr) return IsaCap::kAvx512;
    if (std::strcmp(env, "scalar") == 0) return IsaCap::kScalar;
    if (std::strcmp(env, "avx2") == 0) return IsaCap::kAvx2;
    return IsaCap::kAvx512;
  }();
  return cap;
}

}  // namespace

bool have_avx2() noexcept {
#if defined(__x86_64__)
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported && isa_cap() >= IsaCap::kAvx2;
#else
  return false;
#endif
}

bool have_avx512() noexcept {
#if defined(__x86_64__)
  static const bool supported = __builtin_cpu_supports("avx512vl") != 0 &&
                                __builtin_cpu_supports("avx512dq") != 0;
  return supported && isa_cap() >= IsaCap::kAvx512;
#else
  return false;
#endif
}

bool have_avx512_vnni() noexcept {
#if defined(__x86_64__)
  static const bool supported = __builtin_cpu_supports("avx512vnni") != 0 &&
                                __builtin_cpu_supports("avx512bw") != 0;
  return supported && have_avx512();
#else
  return false;
#endif
}

}  // namespace cea::util
