#pragma once

// Runtime CPU feature detection shared by every SIMD dispatch site
// (data/loss_sampling and nn/gemm). Results are cached after the first
// query. The CEA_FORCE_ISA environment variable ("scalar", "avx2",
// "avx512") caps what the detectors report, so kernel-equivalence tests
// and benches can pin a code path on any machine without recompiling.

namespace cea::util {

/// True when the CPU supports the AVX2 kernels (and CEA_FORCE_ISA allows).
bool have_avx2() noexcept;

/// True when the CPU supports the AVX-512VL/DQ kernels (and CEA_FORCE_ISA
/// allows).
bool have_avx512() noexcept;

}  // namespace cea::util
