#pragma once

// Runtime CPU feature detection shared by every SIMD dispatch site
// (data/loss_sampling and nn/gemm). Results are cached after the first
// query. The CEA_FORCE_ISA environment variable ("scalar", "avx2",
// "avx512") caps what the detectors report, so kernel-equivalence tests
// and benches can pin a code path on any machine without recompiling.

namespace cea::util {

/// True when the CPU supports the AVX2 kernels (and CEA_FORCE_ISA allows).
bool have_avx2() noexcept;

/// True when the CPU supports the AVX-512VL/DQ kernels (and CEA_FORCE_ISA
/// allows).
bool have_avx512() noexcept;

/// True when the CPU additionally supports AVX-512 VNNI (`vpdpbusd`), the
/// int8 dot-product extension the quantized GEMM kernel uses. Implies
/// have_avx512(); capped by CEA_FORCE_ISA like the rest ("avx2" hides it).
bool have_avx512_vnni() noexcept;

}  // namespace cea::util
