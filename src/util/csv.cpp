#include "util/csv.h"

#include <stdexcept>

#include "util/numio.h"

namespace cea {

std::string csv_escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(cell);
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(std::initializer_list<std::string_view> cells) {
  std::vector<std::string> copy;
  copy.reserve(cells.size());
  for (auto c : cells) copy.emplace_back(c);
  write_cells(copy);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  write_cells(cells);
}

void CsvWriter::write_row(std::string_view label,
                          const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.emplace_back(label);
  // util::format_double, not ostringstream: stream insertion renders the
  // decimal separator of the imbued (global) locale, which would corrupt
  // the CSV under e.g. de_DE.UTF-8.
  for (double v : values) cells.push_back(util::format_double(v, 10));
  write_cells(cells);
}

void CsvWriter::write_row_exact(std::string_view label,
                                const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.emplace_back(label);
  // util::format_double_exact, not snprintf "%a": printf consults
  // LC_NUMERIC for the radix character, so a non-"C" locale would emit
  // "0x1,8p+3" and break every bit-exact reader.
  for (double v : values) cells.push_back(util::format_double_exact(v));
  write_cells(cells);
}

}  // namespace cea
