#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace cea {

/// Minimal CSV writer used by the benchmark harness to dump figure series.
///
/// Values containing commas, quotes, or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens (truncates) the file; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(std::initializer_list<std::string_view> cells);
  void write_row(const std::vector<std::string>& cells);

  /// Convenience: format doubles with 10 significant digits (plot-grade).
  void write_row(std::string_view label, const std::vector<double>& values);

  /// Format doubles as C99 hex-floats (%a): every bit of the mantissa
  /// round-trips exactly through strtod, which is what the golden-trace
  /// regression harness relies on for bit-exact comparisons.
  void write_row_exact(std::string_view label,
                       const std::vector<double>& values);

 private:
  void write_cells(const std::vector<std::string>& cells);

  std::ofstream out_;
};

/// Escape a single CSV cell (exposed for testing).
std::string csv_escape(std::string_view cell);

}  // namespace cea
