#include "util/numio.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <system_error>

namespace cea::util {
namespace {

#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
#define CEA_HAVE_FP_CHARCONV 1
#else
#define CEA_HAVE_FP_CHARCONV 0
#endif

bool parse_with_format(std::string_view digits, bool negative,
                       std::chars_format format, double& out) noexcept {
#if CEA_HAVE_FP_CHARCONV
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), value,
                      format);
  if (ec != std::errc{} || ptr != digits.data() + digits.size()) return false;
  out = negative ? -value : value;
  return true;
#else
  // Fallback for toolchains without floating-point <charconv>: rebuild a
  // canonical C-locale string and hand it to strtod after normalizing any
  // locale-specific decimal separator away. strtod always accepts the
  // C-locale '.' in addition to the locale separator on glibc, and the
  // inputs we produce never contain a locale separator, so this path is
  // correct for round-tripping our own output; it exists only to keep the
  // build alive on pre-charconv standard libraries.
  std::string buffer;
  if (negative) buffer.push_back('-');
  if (format == std::chars_format::hex) buffer += "0x";
  buffer.append(digits);
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) return false;
  out = value;
  return true;
#endif
}

}  // namespace

bool parse_double(std::string_view cell, double& out) noexcept {
  if (cell.empty()) return false;
  bool negative = false;
  std::string_view rest = cell;
  if (rest.front() == '+' || rest.front() == '-') {
    negative = rest.front() == '-';
    rest.remove_prefix(1);
    if (rest.empty()) return false;
  }
  // C99 hex-floats carry an 0x/0X prefix that std::from_chars's hex format
  // does not expect; strip it and switch format.
  if (rest.size() >= 2 && rest[0] == '0' && (rest[1] == 'x' || rest[1] == 'X')) {
    return parse_with_format(rest.substr(2), negative, std::chars_format::hex,
                             out);
  }
  return parse_with_format(rest, negative, std::chars_format::general, out);
}

bool parse_u64(std::string_view cell, std::uint64_t& out) noexcept {
  if (cell.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(cell.data(), cell.data() + cell.size(), out, 10);
  return ec == std::errc{} && ptr == cell.data() + cell.size();
}

bool parse_i64(std::string_view cell, std::int64_t& out) noexcept {
  if (cell.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(cell.data(), cell.data() + cell.size(), out, 10);
  return ec == std::errc{} && ptr == cell.data() + cell.size();
}

std::string format_double_exact(double value) {
#if CEA_HAVE_FP_CHARCONV
  char digits[64];
  const auto [ptr, ec] =
      std::to_chars(digits, digits + sizeof(digits), value,
                    std::chars_format::hex);
  if (ec != std::errc{}) return "nan";
  std::string_view body(digits, static_cast<std::size_t>(ptr - digits));
  std::string result;
  result.reserve(body.size() + 3);
  if (!body.empty() && body.front() == '-') {
    result.push_back('-');
    body.remove_prefix(1);
  }
  // to_chars hex output has no 0x prefix; add it so strtod/parse_double
  // recognize the value. inf/nan carry no prefix.
  if (!body.empty() && (body.front() == 'i' || body.front() == 'n')) {
    result.append(body);
  } else {
    result += "0x";
    result.append(body);
  }
  return result;
#else
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
#endif
}

std::string format_double(double value, int precision) {
#if CEA_HAVE_FP_CHARCONV
  char digits[64];
  const auto [ptr, ec] =
      std::to_chars(digits, digits + sizeof(digits), value,
                    std::chars_format::general, precision);
  if (ec != std::errc{}) return "nan";
  return std::string(digits, static_cast<std::size_t>(ptr - digits));
#else
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
  return buffer;
#endif
}

std::string format_u64(std::uint64_t value) {
  char digits[24];
  const auto [ptr, ec] = std::to_chars(digits, digits + sizeof(digits), value);
  (void)ec;
  return std::string(digits, static_cast<std::size_t>(ptr - digits));
}

std::string format_i64(std::int64_t value) {
  char digits[24];
  const auto [ptr, ec] = std::to_chars(digits, digits + sizeof(digits), value);
  (void)ec;
  return std::string(digits, static_cast<std::size_t>(ptr - digits));
}

}  // namespace cea::util
