#pragma once

// Locale-independent numeric parsing and formatting.
//
// std::strtod, std::stod, printf("%a"/"%g"), and ostream operator<< all
// consult the process locale (LC_NUMERIC): under e.g. de_DE.UTF-8 the
// decimal separator becomes ',' and "7.4" parses as 7 with trailing
// garbage while 7.4 prints as "7,4". Every CSV / golden-trace / checkpoint
// path in this repo must be immune to the host locale, so they all funnel
// through these helpers, which are built on std::from_chars/std::to_chars
// (locale-independent by specification) with a manual hex-float fallback
// for toolchains whose <charconv> lacks floating-point support.

#include <cstdint>
#include <string>
#include <string_view>

namespace cea::util {

/// Parse a complete double from `cell`: decimal ("7.4", "1e-3", "inf",
/// "nan") or C99 hex-float ("0x1.8p+3", "-0X1p-2", as printed by
/// format_double_exact / printf %a). Leading/trailing whitespace or any
/// trailing garbage fails; the empty string fails. Never consults the
/// locale.
bool parse_double(std::string_view cell, double& out) noexcept;

/// Parse a complete unsigned decimal integer. Fails on sign, garbage, or
/// overflow.
bool parse_u64(std::string_view cell, std::uint64_t& out) noexcept;

/// Parse a complete signed decimal integer.
bool parse_i64(std::string_view cell, std::int64_t& out) noexcept;

/// Exact hex-float formatting ("0x1.999999999999ap-4"): the shortest form
/// that parse_double round-trips bit-for-bit, equivalent in role to printf
/// "%a" but immune to LC_NUMERIC.
std::string format_double_exact(double value);

/// printf "%.<precision>g" equivalent via std::to_chars — plot-grade
/// decimal output with a locale-independent '.' separator.
std::string format_double(double value, int precision = 10);

std::string format_u64(std::uint64_t value);
std::string format_i64(std::int64_t value);

}  // namespace cea::util
