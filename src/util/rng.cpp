#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace cea {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

Rng Rng::split() noexcept { return Rng((*this)() ^ 0xA02BDBF7BB3C0A7ULL); }

double Rng::uniform() noexcept {
  // 53-bit mantissa from the top bits.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  // hi < lo would wrap the range computation below and silently sample
  // from an unrelated interval; it is a caller bug, not a degenerate case.
  assert(lo <= hi && "Rng::uniform_int requires lo <= hi");
  // Width and offset arithmetic in uint64: hi - lo overflows int64 when
  // the bounds span more than half the domain (wraparound is the defined
  // behavior we want, and the final two's-complement cast restores the
  // signed result).
  const std::uint64_t range =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t v = (*this)();
  while (v >= limit) v = (*this)();
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + v % range);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::int64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const double v = normal(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<std::int64_t>(std::llround(v));
  }
  const double threshold = std::exp(-mean);
  std::int64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > threshold);
  return k - 1;
}

std::size_t Rng::categorical(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return weights.size() - 1;
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const auto j =
        static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }
  return order;
}

}  // namespace cea
