#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cea {

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash. Used to derive
/// decorrelated seeds for logically-indexed random streams.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Seed for the (a, b)-indexed random stream of a base seed. The simulator
/// keys loss-draw streams by (edge, slot) so that sampling is a pure
/// function of (run_seed, edge, t) — independent of execution order, which
/// is what makes the parallel engine bit-identical to the serial one.
constexpr std::uint64_t stream_seed(std::uint64_t base, std::uint64_t a,
                                    std::uint64_t b) noexcept {
  std::uint64_t x = mix64(base ^ (a * 0x9E3779B97F4A7C15ULL +
                                  0xD1B54A32D192ED03ULL));
  return mix64(x ^ (b * 0x2545F4914F6CDD1DULL + 0x8CB92BA72F3D8DD7ULL));
}

/// Deterministic, seedable pseudo-random number generator.
///
/// Implements xoshiro256** seeded through splitmix64. Every stochastic
/// component in the library draws from an explicitly passed Rng so that a
/// whole simulation is reproducible from a single seed. The generator is
/// cheap to copy; independent streams are derived with split().
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit word. Defined inline: this is the innermost call of
  /// the batched sampling loops, where an out-of-line call per word would
  /// cost more than the generator itself.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl_(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl_(s_[3], 45);
    return result;
  }

  /// Derive an independent child stream; advances this stream once.
  Rng split() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi (asserted);
  /// lo == hi and the full int64 range are both valid.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (cached second value).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Poisson-distributed count with the given mean (mean >= 0).
  /// Uses Knuth's method for small means and normal approximation above 64.
  std::int64_t poisson(double mean) noexcept;

  /// Sample an index from an (unnormalized, nonnegative) weight vector.
  /// Returns weights.size()-1 on degenerate all-zero input. Requires
  /// a nonempty span.
  std::size_t categorical(std::span<const double> weights) noexcept;

  /// Random permutation of {0, ..., n-1} (Fisher-Yates).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Full generator state: the four xoshiro256** words plus the cached
  /// Box-Muller normal. Snapshotting and restoring it continues the stream
  /// bit-identically — the contract the serving daemon's checkpoint layer
  /// (util/state_io.h) relies on.
  struct State {
    std::uint64_t s[4];
    double cached_normal;
    bool has_cached_normal;
  };
  State state() const noexcept {
    return {{s_[0], s_[1], s_[2], s_[3]}, cached_normal_, has_cached_normal_};
  }
  void set_state(const State& state) noexcept {
    for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
    cached_normal_ = state.cached_normal;
    has_cached_normal_ = state.has_cached_normal;
  }

 private:
  static constexpr std::uint64_t rotl_(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace cea
