#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cea {

/// Deterministic, seedable pseudo-random number generator.
///
/// Implements xoshiro256** seeded through splitmix64. Every stochastic
/// component in the library draws from an explicitly passed Rng so that a
/// whole simulation is reproducible from a single seed. The generator is
/// cheap to copy; independent streams are derived with split().
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit word.
  result_type operator()() noexcept;

  /// Derive an independent child stream; advances this stream once.
  Rng split() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (cached second value).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Poisson-distributed count with the given mean (mean >= 0).
  /// Uses Knuth's method for small means and normal approximation above 64.
  std::int64_t poisson(double mean) noexcept;

  /// Sample an index from an (unnormalized, nonnegative) weight vector.
  /// Returns weights.size()-1 on degenerate all-zero input. Requires
  /// a nonempty span.
  std::size_t categorical(std::span<const double> weights) noexcept;

  /// Random permutation of {0, ..., n-1} (Fisher-Yates).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace cea
