#include "util/state_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/numio.h"

namespace cea::util {

// --- StateWriter ----------------------------------------------------------

void StateWriter::begin_line(std::string_view key) {
  payload_.append(key);
  payload_.push_back(' ');
}

void StateWriter::write_u64(std::string_view key, std::uint64_t value) {
  begin_line(key);
  payload_ += format_u64(value);
  payload_.push_back('\n');
}

void StateWriter::write_i64(std::string_view key, std::int64_t value) {
  begin_line(key);
  payload_ += format_i64(value);
  payload_.push_back('\n');
}

void StateWriter::write_bool(std::string_view key, bool value) {
  write_u64(key, value ? 1 : 0);
}

void StateWriter::write_double(std::string_view key, double value) {
  begin_line(key);
  payload_ += format_double_exact(value);
  payload_.push_back('\n');
}

void StateWriter::write_string(std::string_view key, std::string_view value) {
  begin_line(key);
  payload_.append(value);
  payload_.push_back('\n');
}

void StateWriter::write_doubles(std::string_view key,
                                std::span<const double> values) {
  begin_line(key);
  payload_ += format_u64(values.size());
  for (double v : values) {
    payload_.push_back(' ');
    payload_ += format_double_exact(v);
  }
  payload_.push_back('\n');
}

void StateWriter::write_u64s(std::string_view key,
                             std::span<const std::uint64_t> values) {
  begin_line(key);
  payload_ += format_u64(values.size());
  for (std::uint64_t v : values) {
    payload_.push_back(' ');
    payload_ += format_u64(v);
  }
  payload_.push_back('\n');
}

void StateWriter::write_rng(std::string_view key, const Rng& rng) {
  const Rng::State state = rng.state();
  begin_line(key);
  for (std::uint64_t word : state.s) {
    payload_ += format_u64(word);
    payload_.push_back(' ');
  }
  payload_ += format_double_exact(state.cached_normal);
  payload_.push_back(' ');
  payload_ += format_u64(state.has_cached_normal ? 1 : 0);
  payload_.push_back('\n');
}

// --- StateReader ----------------------------------------------------------

namespace {

std::string_view take_token(std::string_view& rest) {
  const std::size_t space = rest.find(' ');
  std::string_view token = rest.substr(0, space);
  rest = space == std::string_view::npos ? std::string_view{}
                                         : rest.substr(space + 1);
  return token;
}

[[noreturn]] void fail(std::string_view key, std::size_t line,
                       std::string_view what) {
  throw StateError("checkpoint state: key '" + std::string(key) + "' (line " +
                   std::to_string(line) + "): " + std::string(what));
}

}  // namespace

std::string_view StateReader::next_value(std::string_view key) {
  if (remaining_.empty()) fail(key, line_, "payload ended early");
  ++line_;
  const std::size_t eol = remaining_.find('\n');
  if (eol == std::string_view::npos) fail(key, line_, "unterminated line");
  std::string_view line = remaining_.substr(0, eol);
  remaining_ = remaining_.substr(eol + 1);
  const std::size_t space = line.find(' ');
  if (space == std::string_view::npos) fail(key, line_, "malformed line");
  if (line.substr(0, space) != key) {
    fail(key, line_,
         "expected key, found '" + std::string(line.substr(0, space)) + "'");
  }
  return line.substr(space + 1);
}

std::uint64_t StateReader::read_u64(std::string_view key) {
  std::uint64_t value = 0;
  if (!parse_u64(next_value(key), value)) fail(key, line_, "bad u64");
  return value;
}

std::int64_t StateReader::read_i64(std::string_view key) {
  std::int64_t value = 0;
  if (!parse_i64(next_value(key), value)) fail(key, line_, "bad i64");
  return value;
}

bool StateReader::read_bool(std::string_view key) {
  const std::uint64_t value = read_u64(key);
  if (value > 1) fail(key, line_, "bad bool");
  return value != 0;
}

double StateReader::read_double(std::string_view key) {
  double value = 0.0;
  if (!parse_double(next_value(key), value)) fail(key, line_, "bad double");
  return value;
}

std::string StateReader::read_string(std::string_view key) {
  return std::string(next_value(key));
}

std::vector<double> StateReader::read_doubles(std::string_view key) {
  std::string_view rest = next_value(key);
  std::uint64_t count = 0;
  if (!parse_u64(take_token(rest), count)) fail(key, line_, "bad count");
  std::vector<double> values;
  values.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    double v = 0.0;
    if (!parse_double(take_token(rest), v)) fail(key, line_, "bad element");
    values.push_back(v);
  }
  if (!rest.empty()) fail(key, line_, "trailing data");
  return values;
}

std::vector<std::uint64_t> StateReader::read_u64s(std::string_view key) {
  std::string_view rest = next_value(key);
  std::uint64_t count = 0;
  if (!parse_u64(take_token(rest), count)) fail(key, line_, "bad count");
  std::vector<std::uint64_t> values;
  values.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t v = 0;
    if (!parse_u64(take_token(rest), v)) fail(key, line_, "bad element");
    values.push_back(v);
  }
  if (!rest.empty()) fail(key, line_, "trailing data");
  return values;
}

std::vector<double> StateReader::read_doubles(std::string_view key,
                                              std::size_t expected) {
  auto values = read_doubles(key);
  if (values.size() != expected) {
    fail(key, line_,
         "expected " + std::to_string(expected) + " elements, found " +
             std::to_string(values.size()));
  }
  return values;
}

std::vector<std::uint64_t> StateReader::read_u64s(std::string_view key,
                                                  std::size_t expected) {
  auto values = read_u64s(key);
  if (values.size() != expected) {
    fail(key, line_,
         "expected " + std::to_string(expected) + " elements, found " +
             std::to_string(values.size()));
  }
  return values;
}

void StateReader::read_rng(std::string_view key, Rng& rng) {
  std::string_view rest = next_value(key);
  Rng::State state{};
  for (auto& word : state.s) {
    if (!parse_u64(take_token(rest), word)) fail(key, line_, "bad rng word");
  }
  if (!parse_double(take_token(rest), state.cached_normal)) {
    fail(key, line_, "bad rng cache");
  }
  std::uint64_t has_cache = 0;
  if (!parse_u64(take_token(rest), has_cache) || has_cache > 1 ||
      !rest.empty()) {
    fail(key, line_, "bad rng cache flag");
  }
  state.has_cached_normal = has_cache != 0;
  rng.set_state(state);
}

void StateReader::expect_end() const {
  if (!remaining_.empty()) {
    throw StateError(
        "checkpoint state: trailing data after the last expected field "
        "(reader/writer schema drift)");
  }
}

// --- Envelope -------------------------------------------------------------

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

namespace {

constexpr std::string_view kMagic = "CEA-CHECKPOINT";

std::string hex16(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

}  // namespace

std::string encode_checkpoint(std::string_view payload) {
  std::string file;
  file.reserve(payload.size() + 64);
  file.append(kMagic);
  file += " v";
  file += format_u64(static_cast<std::uint64_t>(kCheckpointVersion));
  file.push_back(' ');
  file += format_u64(payload.size());
  file.push_back(' ');
  file += hex16(fnv1a64(payload));
  file.push_back('\n');
  file.append(payload);
  return file;
}

std::string decode_checkpoint(std::string_view file_bytes) {
  const std::size_t eol = file_bytes.find('\n');
  if (eol == std::string_view::npos) {
    throw StateError("checkpoint: missing header line (truncated file?)");
  }
  std::string_view header = file_bytes.substr(0, eol);
  std::string_view rest = header;
  if (take_token(rest) != kMagic) {
    throw StateError("checkpoint: bad magic (not a CEA-CHECKPOINT file)");
  }
  const std::string_view version = take_token(rest);
  if (version.size() < 2 || version[0] != 'v') {
    throw StateError("checkpoint: malformed version field");
  }
  std::uint64_t version_number = 0;
  if (!parse_u64(version.substr(1), version_number)) {
    throw StateError("checkpoint: malformed version field");
  }
  if (version_number != static_cast<std::uint64_t>(kCheckpointVersion)) {
    throw StateError("checkpoint: unsupported version v" +
                     std::to_string(version_number) + " (this build reads v" +
                     std::to_string(kCheckpointVersion) + ")");
  }
  std::uint64_t payload_bytes = 0;
  if (!parse_u64(take_token(rest), payload_bytes)) {
    throw StateError("checkpoint: malformed payload length");
  }
  std::uint64_t checksum = 0;
  const std::string_view checksum_hex = take_token(rest);
  if (checksum_hex.size() != 16 || !rest.empty()) {
    throw StateError("checkpoint: malformed checksum field");
  }
  for (char c : checksum_hex) {
    checksum <<= 4;
    if (c >= '0' && c <= '9') {
      checksum |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      checksum |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      throw StateError("checkpoint: malformed checksum field");
    }
  }
  const std::string_view payload = file_bytes.substr(eol + 1);
  if (payload.size() != payload_bytes) {
    throw StateError("checkpoint: truncated payload (" +
                     std::to_string(payload.size()) + " bytes, header says " +
                     std::to_string(payload_bytes) + ")");
  }
  if (fnv1a64(payload) != checksum) {
    throw StateError("checkpoint: checksum mismatch (corrupted payload)");
  }
  return std::string(payload);
}

void write_file_atomic(const std::string& path, std::string_view bytes) {
  const std::string temp_path = path + ".tmp";
  const int fd = ::open(temp_path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw StateError("checkpoint: cannot open " + temp_path + ": " +
                     std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      ::unlink(temp_path.c_str());
      throw StateError("checkpoint: write failed on " + temp_path + ": " +
                       std::strerror(saved));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(temp_path.c_str());
    throw StateError("checkpoint: fsync failed on " + temp_path + ": " +
                     std::strerror(saved));
  }
  ::close(fd);
  if (::rename(temp_path.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(temp_path.c_str());
    throw StateError("checkpoint: rename to " + path + " failed: " +
                     std::strerror(saved));
  }
  // Persist the rename itself: fsync the containing directory.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

void write_checkpoint_file(const std::string& path,
                           std::string_view payload) {
  write_file_atomic(path, encode_checkpoint(payload));
}

std::string read_file_bytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw StateError("checkpoint: cannot open " + path + ": " +
                     std::strerror(errno));
  }
  std::string bytes;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      throw StateError("checkpoint: read failed on " + path + ": " +
                       std::strerror(saved));
    }
    if (n == 0) break;
    bytes.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return bytes;
}

std::string read_checkpoint_file(const std::string& path) {
  return decode_checkpoint(read_file_bytes(path));
}

}  // namespace cea::util
