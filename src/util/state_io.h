#pragma once

// Bit-exact, versioned, crash-safe state serialization — the substrate of
// the serving daemon's checkpoint/restore (see serve/daemon.h and
// DESIGN.md §11).
//
// Payload model: an ordered sequence of (key, typed value) lines. Doubles
// are C99 hex-floats (util/numio.h), so every mantissa bit round-trips;
// integers are decimal; vectors carry an explicit element count. Readers
// consume lines strictly in writer order and verify each key, so a
// structural mismatch (schema drift, corrupted line, wrong object) fails
// immediately with the offending key in the message instead of silently
// shearing fields.
//
// File envelope: a single header line
//   CEA-CHECKPOINT v<version> <payload-bytes> <fnv1a64-hex>
// followed by the payload. The byte count catches truncation, the FNV-1a
// checksum catches in-place corruption, and the version gate refuses
// formats this build does not understand. write_checkpoint_file() is
// crash-safe: temp file in the same directory, fsync, atomic rename,
// directory fsync — a SIGKILL at any instant leaves either the previous
// complete checkpoint or the new one, never a torn file.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace cea::util {

/// Thrown on any malformed, truncated, corrupted, or version-mismatched
/// checkpoint payload or file.
class StateError : public std::runtime_error {
 public:
  explicit StateError(const std::string& what) : std::runtime_error(what) {}
};

class StateWriter {
 public:
  void write_u64(std::string_view key, std::uint64_t value);
  void write_i64(std::string_view key, std::int64_t value);
  void write_bool(std::string_view key, bool value);
  void write_double(std::string_view key, double value);  ///< hex-float, exact
  /// Value may not contain newlines; it runs to end of line.
  void write_string(std::string_view key, std::string_view value);
  void write_doubles(std::string_view key, std::span<const double> values);
  void write_u64s(std::string_view key, std::span<const std::uint64_t> values);
  /// Full generator state (xoshiro words + Box-Muller cache) — restoring
  /// reproduces the exact continuation of the stream.
  void write_rng(std::string_view key, const Rng& rng);

  const std::string& payload() const noexcept { return payload_; }

 private:
  void begin_line(std::string_view key);
  std::string payload_;
};

/// Sequential reader over a StateWriter payload. Every read names the key
/// it expects; mismatch, malformed value, or premature end throws
/// StateError.
class StateReader {
 public:
  explicit StateReader(std::string_view payload) : remaining_(payload) {}

  std::uint64_t read_u64(std::string_view key);
  std::int64_t read_i64(std::string_view key);
  bool read_bool(std::string_view key);
  double read_double(std::string_view key);
  std::string read_string(std::string_view key);
  std::vector<double> read_doubles(std::string_view key);
  std::vector<std::uint64_t> read_u64s(std::string_view key);
  void read_rng(std::string_view key, Rng& rng);

  /// Like read_doubles/read_u64s but requires exactly `expected` elements.
  std::vector<double> read_doubles(std::string_view key, std::size_t expected);
  std::vector<std::uint64_t> read_u64s(std::string_view key,
                                       std::size_t expected);

  bool at_end() const noexcept { return remaining_.empty(); }
  /// Throws unless the whole payload was consumed (trailing data usually
  /// means reader/writer schema drift).
  void expect_end() const;

 private:
  std::string_view next_value(std::string_view key);
  std::string_view remaining_;
  std::size_t line_ = 0;
};

/// FNV-1a 64-bit over `bytes` (the checkpoint envelope's checksum).
std::uint64_t fnv1a64(std::string_view bytes) noexcept;

inline constexpr int kCheckpointVersion = 1;

/// Serialize `payload` into the envelope format (header + payload bytes).
std::string encode_checkpoint(std::string_view payload);

/// Validate an envelope (magic, version, length, checksum) and return the
/// payload. Throws StateError naming the failure.
std::string decode_checkpoint(std::string_view file_bytes);

/// Crash-safe checkpoint write: envelope into `path + ".tmp"`, fsync,
/// rename over `path`, fsync the directory. Throws StateError on any I/O
/// failure.
void write_checkpoint_file(const std::string& path, std::string_view payload);

/// Crash-safe raw file publication — the same temp+fsync+rename+dir-fsync
/// discipline write_checkpoint_file uses, without the checkpoint envelope.
/// A reader never observes a torn `path`: it sees the previous complete
/// file or the new one. Shared by the decision-journal segment writer and
/// the metrics status-file publisher (obs/journal.h, serve/daemon.h).
/// Throws StateError on any I/O failure.
void write_file_atomic(const std::string& path, std::string_view bytes);

/// Slurp a file's bytes; throws StateError when it cannot be opened/read.
std::string read_file_bytes(const std::string& path);

/// Read and validate a checkpoint file; returns the payload.
std::string read_checkpoint_file(const std::string& path);

}  // namespace cea::util
