#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace cea {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void Ema::add(double x) noexcept {
  if (!seeded_) {
    value_ = x;
    seeded_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

double mean_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev_of(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double percentile_of(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 1.0);
  const double pos = clamped * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<double> cumulative_sum(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  double run = 0.0;
  for (double x : xs) {
    run += x;
    out.push_back(run);
  }
  return out;
}

double pearson(std::span<const double> xs, std::span<const double> ys) noexcept {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace cea
