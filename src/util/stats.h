#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cea {

/// Numerically stable running mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two observations.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponential moving average with configurable smoothing factor.
class Ema {
 public:
  explicit Ema(double alpha) noexcept : alpha_(alpha) {}
  void add(double x) noexcept;
  double value() const noexcept { return value_; }
  bool empty() const noexcept { return !seeded_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Mean of a sequence; 0 for an empty span.
double mean_of(std::span<const double> xs) noexcept;

/// Unbiased sample standard deviation; 0 for fewer than two values.
double stddev_of(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile (q in [0,1]) of an unsorted sequence.
/// Copies and sorts internally; 0 for an empty span.
double percentile_of(std::span<const double> xs, double q);

/// Cumulative sums: out[i] = xs[0] + ... + xs[i].
std::vector<double> cumulative_sum(std::span<const double> xs);

/// Pearson correlation of two equal-length sequences; 0 if degenerate.
double pearson(std::span<const double> xs, std::span<const double> ys) noexcept;

}  // namespace cea
