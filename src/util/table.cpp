#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace cea {

std::string fmt(double v, int precision) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(precision);
  ss << v;
  return ss.str();
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& label, const std::vector<double>& values,
                    int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      out << (c == 0 ? "" : "  ");
      out << cell;
      out << std::string(widths[c] - cell.size(), ' ');
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c == 0 ? 0 : 2);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace cea
