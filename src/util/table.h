#pragma once

#include <string>
#include <vector>

namespace cea {

/// Aligned console table used by the benchmark binaries to print the same
/// rows/series the paper's figures report.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: first cell is a label, the rest formatted doubles.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 4);

  /// Render with column alignment and a separator under the header.
  std::string to_string() const;

  /// Print to stdout.
  void print() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper shared by bench binaries).
std::string fmt(double v, int precision = 4);

}  // namespace cea
