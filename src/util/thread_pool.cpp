#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "obs/telemetry.h"

namespace cea::util {
namespace {

// Set while a thread is executing job indices (worker or participating
// caller). A nested parallel_for on such a thread runs inline.
thread_local bool t_in_parallel_region = false;

// Bounded spin (in sched-yield steps) before a thread parks on a condition
// variable. Yielding keeps single-core boxes live (the other party gets the
// CPU immediately) while staying far cheaper than a futex sleep/wake pair
// when jobs arrive back-to-back, as the simulator's per-slot fan-out does.
constexpr int kWorkerSpinYields = 64;
constexpr int kCallerSpinYields = 64;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::run_job_slice(std::uint64_t epoch_tag) {
  std::uint64_t cur = claim_.load(std::memory_order_acquire);
  if ((cur & ~kIndexMask) != epoch_tag) return;
  // The acquire load above observed our epoch's claim word, so these
  // relaxed loads see the values published by that submission.
  const std::size_t n = job_n_.load(std::memory_order_relaxed);
  const std::function<void(std::size_t)>* fn =
      job_fn_.load(std::memory_order_relaxed);
  while (true) {
    if ((cur & ~kIndexMask) != epoch_tag) return;  // job changed under us
    const std::size_t index = static_cast<std::size_t>(cur & kIndexMask);
    if (index >= n) return;
    if (!claim_.compare_exchange_weak(cur, cur + 1,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      continue;  // lost the race; cur was reloaded
    }
    (*fn)(index);
    if (job_done_.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
      // Lock so the notify cannot slip between the waiter's predicate
      // check and its sleep.
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
    cur = claim_.load(std::memory_order_acquire);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  while (true) {
    // Poll for the next epoch before parking on the condition variable.
    bool observed_change = false;
    for (int spin = 0; spin < kWorkerSpinYields; ++spin) {
      if (stop_.load(std::memory_order_relaxed) ||
          epoch_.load(std::memory_order_acquire) != seen_epoch) {
        observed_change = true;
        break;
      }
      std::this_thread::yield();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!observed_change) {
        ++sleeping_workers_;
        wake_cv_.wait(lock, [&] {
          return stop_.load(std::memory_order_relaxed) ||
                 epoch_.load(std::memory_order_relaxed) != seen_epoch;
        });
        --sleeping_workers_;
      }
      if (stop_.load(std::memory_order_relaxed)) return;
      seen_epoch = epoch_.load(std::memory_order_relaxed);
      // Honor the submitter's concurrency cap (caller counts as one).
      if (job_workers_cap_ > 0 && job_workers_joined_ + 1 >= job_workers_cap_)
        continue;
      ++job_workers_joined_;
    }
    t_in_parallel_region = true;
    run_job_slice(seen_epoch << kEpochShift);
    t_in_parallel_region = false;
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t max_concurrency) {
  if (n == 0) return;
  if (t_in_parallel_region || workers_.empty() || n == 1 ||
      max_concurrency == 1) {
    CEA_TELEM(static const obs::MetricId obs_inline =
                  obs::counter("pool.inline_jobs");
              obs::add(obs_inline););
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Job telemetry: one span per submitted job (submit -> all indices
  // done, i.e. the caller-observed latency) plus the fan-out width. The
  // pool has no task queue — indices are claimed from a shared counter —
  // so job size is the queue-depth analog.
  CEA_SPAN("pool.job");
#if defined(CEA_TELEMETRY)
  {
    static const double kSizeEdges[] = {1,  2,   4,   8,    16,  32,
                                        64, 128, 256, 1024, 4096};
    static const obs::MetricId obs_size =
        obs::histogram("pool.job_size", kSizeEdges);
    obs::observe(obs_size, static_cast<double>(n));
  }
#endif

  std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  std::uint64_t epoch_tag;
  bool wake_sleepers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_fn_.store(&fn, std::memory_order_relaxed);
    job_n_.store(n, std::memory_order_relaxed);
    job_done_.store(0, std::memory_order_relaxed);
    job_workers_cap_ = max_concurrency;
    job_workers_joined_ = 0;
    const std::uint64_t epoch =
        epoch_.load(std::memory_order_relaxed) + 1;
    epoch_tag = epoch << kEpochShift;
    // Opening the claim word for the new epoch is what lets stale workers
    // (still spinning on the previous epoch's tag) see the job switch.
    claim_.store(epoch_tag, std::memory_order_release);
    epoch_.store(epoch, std::memory_order_release);
    // Spinning workers see the epoch store; only parked ones need the cv.
    // A worker cannot slip into the cv between this snapshot and the
    // notify: it would recheck the predicate under mutex_ first and see
    // the new epoch.
    wake_sleepers = sleeping_workers_ > 0;
  }
  if (wake_sleepers) wake_cv_.notify_all();

  t_in_parallel_region = true;
  run_job_slice(epoch_tag);
  t_in_parallel_region = false;

  // The caller usually drains the job itself (always on a single-core
  // host); spin briefly before paying for a futex sleep.
  for (int spin = 0; spin < kCallerSpinYields; ++spin) {
    if (job_done_.load(std::memory_order_acquire) == n) {
      job_fn_.store(nullptr, std::memory_order_relaxed);
      return;
    }
    std::this_thread::yield();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    return job_done_.load(std::memory_order_acquire) == n;
  });
  job_fn_.store(nullptr, std::memory_order_relaxed);
}

void ThreadPool::parallel_for_blocked(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) {
    const std::size_t participants = workers_.size() + 1;
    grain = std::max<std::size_t>(1, n / (4 * participants));
  }
  if (grain >= n) {
    fn(0, n);
    return;
  }
  const std::size_t shards = (n + grain - 1) / grain;
  parallel_for(shards, [&](std::size_t shard) {
    const std::size_t begin = shard * grain;
    fn(begin, std::min(begin + grain, n));
  });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("CEA_BENCH_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{0};
  }());
  return pool;
}

}  // namespace cea::util
