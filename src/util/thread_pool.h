#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cea::util {

/// Persistent worker-thread pool for deterministic data parallelism.
///
/// The pool exposes a single primitive, parallel_for(n, fn): indices
/// 0..n-1 are claimed atomically by the workers plus the calling thread,
/// each index is passed to fn exactly once, and the call returns only when
/// every index has finished. Because callers write results into
/// index-addressed slots and reduce serially afterwards, any computation
/// built on parallel_for is bit-identical for every thread count —
/// including zero workers, where the loop simply runs inline.
///
/// parallel_for is re-entrant by design: a call made from inside a running
/// parallel_for (on a worker or on a caller thread that is participating)
/// executes inline on that thread instead of deadlocking on the pool. This
/// lets e.g. a parallel multi-run driver own simulators that are themselves
/// pool-parallel without either layer knowing about the other.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (the calling thread also participates, so up
  /// to size()+1 indices run concurrently).
  std::size_t size() const noexcept { return workers_.size(); }

  /// Run fn(i) for every i in [0, n); blocks until all are done.
  /// `max_concurrency` caps how many threads participate (0 = no cap); the
  /// result is identical either way, only the scheduling changes.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t max_concurrency = 0);

  /// Sharded variant for fleets far wider than the pool: indices [0, n)
  /// are cut into contiguous shards of `grain` indices (the last shard is
  /// shorter) and fn(begin, end) is invoked once per shard. One claim per
  /// *shard* instead of per index amortizes the atomic claim + dispatch
  /// cost that dominates parallel_for when each index is cheap (a 10k-edge
  /// slot is 10k tiny tasks but only ~n/grain claims here). The GEMM
  /// layer's one-writer contract carries over: a shard's callback is the
  /// only writer of state indexed by [begin, end), so any computation that
  /// writes index-addressed results and reduces serially afterwards stays
  /// bit-identical for every thread count and every grain. grain == 0
  /// picks a default that spreads shards ~4 per participant.
  void parallel_for_blocked(
      std::size_t n, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide shared pool, created on first use. Sized by the
  /// CEA_BENCH_THREADS environment variable when set (>0), otherwise by
  /// hardware concurrency.
  static ThreadPool& global();

 private:
  /// Index claims are lock-free: claim_ packs the job epoch (high 24 bits)
  /// with the next unclaimed index (low 40 bits). A compare-exchange that
  /// observes a foreign epoch backs off without consuming an index, so a
  /// worker that raced past the end of an old job can never execute an
  /// index of the next one.
  static constexpr int kEpochShift = 40;
  static constexpr std::uint64_t kIndexMask =
      (std::uint64_t{1} << kEpochShift) - 1;

  void worker_loop();
  void run_job_slice(std::uint64_t epoch_tag);

  std::mutex mutex_;
  std::condition_variable wake_cv_;  ///< workers wait for a new job epoch
  std::condition_variable done_cv_;  ///< caller waits for job completion
  std::mutex submit_mutex_;          ///< serializes concurrent submitters

  // Current job. job_fn_ and job_n_ are written before the claim word is
  // opened for the new epoch (release store), so a thread whose tagged
  // claim succeeds is guaranteed to observe the matching job. They are
  // atomic because a stale worker may load them concurrently with the next
  // submission; the epoch-tag check discards such loads before use.
  std::atomic<const std::function<void(std::size_t)>*> job_fn_{nullptr};
  std::atomic<std::size_t> job_n_{0};
  std::atomic<std::uint64_t> claim_{0};    ///< epoch<<40 | next index
  std::atomic<std::size_t> job_done_{0};   ///< indices finished
  std::size_t job_workers_cap_ = 0;
  std::size_t job_workers_joined_ = 0;
  /// Written under mutex_; atomic so idle workers can poll it lock-free
  /// during their bounded spin before falling back to the condition
  /// variable. The simulator submits one job per slot (microseconds
  /// apart), and a futex sleep/wake cycle per slot would dominate.
  std::atomic<std::uint64_t> epoch_{0};
  std::size_t sleeping_workers_ = 0;  ///< workers inside wake_cv_ (mutex_)

  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;
};

}  // namespace cea::util
