#include "bandit/ogd_policy.h"

#include <gtest/gtest.h>

namespace cea::bandit {
namespace {

PolicyContext make_context(std::size_t num_models, std::uint64_t seed = 1) {
  PolicyContext context;
  context.num_models = num_models;
  context.seed = seed;
  return context;
}

TEST(Ogd, ProbabilitiesStayOnSimplex) {
  OgdPolicy policy(make_context(4, 3), 0.5, 0.05);
  Rng noise(5);
  for (std::size_t t = 0; t < 500; ++t) {
    const auto arm = policy.select(t);
    policy.feedback(t, arm, noise.uniform(0.0, 1.5));
    double total = 0.0;
    for (double p : policy.probabilities()) {
      ASSERT_GE(p, -1e-12);
      total += p;
    }
    ASSERT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Ogd, ConcentratesOnBestArm) {
  OgdPolicy policy(make_context(3, 7), 0.5, 0.05);
  Rng noise(9);
  std::vector<int> late(3, 0);
  for (std::size_t t = 0; t < 4000; ++t) {
    const auto arm = policy.select(t);
    policy.feedback(t, arm,
                    (arm == 1 ? 0.2 : 0.8) + noise.uniform(-0.05, 0.05));
    if (t >= 3000) ++late[arm];
  }
  EXPECT_GT(late[1], late[0]);
  EXPECT_GT(late[1], late[2]);
}

TEST(Ogd, ExplorationFloorKeepsAllArmsAlive) {
  OgdPolicy policy(make_context(3, 11), 2.0, 0.2);
  // Hammer arm 0 into the corner, then check others still get sampled.
  for (std::size_t t = 0; t < 200; ++t) {
    const auto arm = policy.select(t);
    policy.feedback(t, arm, arm == 0 ? 0.0 : 1.5);
  }
  std::vector<int> counts(3, 0);
  for (std::size_t t = 200; t < 2200; ++t) {
    const auto arm = policy.select(t);
    ++counts[arm];
    policy.feedback(t, arm, arm == 0 ? 0.0 : 1.5);
  }
  EXPECT_GT(counts[1] + counts[2], 50);
}

TEST(Ogd, FactoryWorks) {
  auto policy = OgdPolicy::factory()(make_context(5, 13));
  for (std::size_t t = 0; t < 20; ++t) {
    const auto arm = policy->select(t);
    ASSERT_LT(arm, 5u);
    policy->feedback(t, arm, 0.5);
  }
  EXPECT_EQ(policy->name(), "OGD");
}

}  // namespace
}  // namespace cea::bandit
