#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "bandit/epsilon_greedy.h"
#include "bandit/exp3.h"
#include "bandit/greedy_policy.h"
#include "bandit/policy.h"
#include "bandit/random_policy.h"
#include "bandit/tsallis_inf.h"
#include "bandit/ucb2.h"

namespace cea::bandit {
namespace {

PolicyContext make_context(std::size_t num_models, std::uint64_t seed = 1) {
  PolicyContext context;
  context.num_models = num_models;
  context.switching_cost = 1.0;
  context.seed = seed;
  context.energy_per_sample.resize(num_models);
  for (std::size_t n = 0; n < num_models; ++n)
    context.energy_per_sample[n] = 1.0 + static_cast<double>(n);
  return context;
}

TEST(ArmStats, MeansAndBest) {
  ArmStats stats(3);
  stats.observe(0, 2.0);
  stats.observe(0, 4.0);
  stats.observe(1, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean(0), 3.0);
  EXPECT_DOUBLE_EQ(stats.mean(1), 1.0);
  EXPECT_EQ(stats.count(0), 2u);
  EXPECT_EQ(stats.total_count(), 3u);
  // Arm 2 unplayed -> preferred by best_arm.
  EXPECT_EQ(stats.best_arm(), 2u);
  stats.observe(2, 10.0);
  EXPECT_EQ(stats.best_arm(), 1u);
}

TEST(RandomPolicy, SelectsAllArmsEventually) {
  RandomPolicy policy(make_context(4));
  std::set<std::size_t> seen;
  for (std::size_t t = 0; t < 200; ++t) seen.insert(policy.select(t));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RandomPolicy, UniformDistribution) {
  RandomPolicy policy(make_context(3, 9));
  std::vector<int> counts(3, 0);
  for (std::size_t t = 0; t < 30000; ++t) ++counts[policy.select(t)];
  for (int c : counts) EXPECT_NEAR(c / 30000.0, 1.0 / 3.0, 0.02);
}

TEST(GreedyPolicy, PicksLowestEnergyAlways) {
  auto context = make_context(5);
  context.energy_per_sample = {3.0, 0.5, 2.0, 1.0, 4.0};
  GreedyEnergyPolicy policy(context);
  for (std::size_t t = 0; t < 50; ++t) EXPECT_EQ(policy.select(t), 1u);
}

TEST(GreedyPolicy, NoEnergyTableFallsBackToZero) {
  auto context = make_context(3);
  context.energy_per_sample.clear();
  GreedyEnergyPolicy policy(context);
  EXPECT_EQ(policy.select(0), 0u);
}

TEST(GreedyPolicy, IgnoresFeedback) {
  auto context = make_context(3);
  context.energy_per_sample = {1.0, 2.0, 3.0};
  GreedyEnergyPolicy policy(context);
  policy.feedback(0, 0, 100.0);
  EXPECT_EQ(policy.select(1), 0u);
}

TEST(EpsilonGreedy, ZeroEpsilonIsPureExploitation) {
  EpsilonGreedyPolicy policy(make_context(3), 0.0);
  // Explore each arm once via best_arm's unplayed-arm preference.
  for (std::size_t t = 0; t < 3; ++t) {
    const std::size_t arm = policy.select(t);
    policy.feedback(t, arm, arm == 1 ? 0.1 : 1.0);
  }
  for (std::size_t t = 3; t < 30; ++t) {
    const std::size_t arm = policy.select(t);
    EXPECT_EQ(arm, 1u);
    policy.feedback(t, arm, 0.1);
  }
}

TEST(EpsilonGreedy, OneEpsilonIsUniform) {
  EpsilonGreedyPolicy policy(make_context(4, 3), 1.0);
  std::set<std::size_t> seen;
  for (std::size_t t = 0; t < 200; ++t) {
    const std::size_t arm = policy.select(t);
    seen.insert(arm);
    policy.feedback(t, arm, 1.0);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Exp3, ConcentratesOnBestArm) {
  Exp3Policy policy(make_context(3, 5));
  std::vector<int> counts(3, 0);
  for (std::size_t t = 0; t < 3000; ++t) {
    const std::size_t arm = policy.select(t);
    policy.feedback(t, arm, arm == 2 ? 0.1 : 1.0);
    if (t >= 2000) ++counts[arm];
  }
  EXPECT_GT(counts[2], counts[0]);
  EXPECT_GT(counts[2], counts[1]);
}

TEST(Ucb2, PlaysEveryArmFirst) {
  Ucb2Policy policy(make_context(4), 0.5, 1.0);
  std::set<std::size_t> first_arms;
  for (std::size_t t = 0; t < 4; ++t) {
    const std::size_t arm = policy.select(t);
    first_arms.insert(arm);
    policy.feedback(t, arm, 0.5);
  }
  EXPECT_EQ(first_arms.size(), 4u);
}

TEST(Ucb2, ConvergesToBestArm) {
  Ucb2Policy policy(make_context(3, 7), 0.5, 1.0);
  std::vector<int> counts(3, 0);
  Rng noise(11);
  for (std::size_t t = 0; t < 4000; ++t) {
    const std::size_t arm = policy.select(t);
    const double base = arm == 0 ? 0.2 : 0.8;
    policy.feedback(t, arm, base + noise.uniform(-0.05, 0.05));
    if (t >= 3000) ++counts[arm];
  }
  EXPECT_GT(counts[0], counts[1] + counts[2]);
}

TEST(Ucb2, SwitchesAreLogarithmic) {
  Ucb2Policy policy(make_context(3, 8), 0.5, 1.0);
  std::size_t switches = 0;
  std::size_t prev = SIZE_MAX;
  Rng noise(12);
  const std::size_t horizon = 5000;
  for (std::size_t t = 0; t < horizon; ++t) {
    const std::size_t arm = policy.select(t);
    if (arm != prev) ++switches;
    prev = arm;
    policy.feedback(t, arm, (arm == 1 ? 0.3 : 0.7) + noise.uniform(0.0, 0.1));
  }
  // Epoch doubling: switches should be orders of magnitude below T.
  EXPECT_LT(switches, 200u);
}

TEST(TsallisInf, ConcentratesOnBestArm) {
  TsallisInfPolicy policy(make_context(4, 9));
  std::vector<int> counts(4, 0);
  Rng noise(13);
  for (std::size_t t = 0; t < 4000; ++t) {
    const std::size_t arm = policy.select(t);
    const double base = arm == 3 ? 0.2 : 0.9;
    policy.feedback(t, arm, base + noise.uniform(-0.05, 0.05));
    if (t >= 3000) ++counts[arm];
  }
  EXPECT_GT(counts[3], 700);
}

TEST(TsallisInf, StillExploresOccasionally) {
  TsallisInfPolicy policy(make_context(2, 10));
  std::set<std::size_t> late_arms;
  for (std::size_t t = 0; t < 2000; ++t) {
    const std::size_t arm = policy.select(t);
    policy.feedback(t, arm, arm == 0 ? 0.3 : 0.7);
    if (t > 500) late_arms.insert(arm);
  }
  // Tsallis-INF keeps nonzero probability on every arm.
  EXPECT_GE(late_arms.size(), 1u);
}

TEST(Factories, ProduceWorkingPolicies) {
  const auto context = make_context(3, 21);
  std::vector<PolicyFactory> factories = {
      RandomPolicy::factory(),       GreedyEnergyPolicy::factory(),
      EpsilonGreedyPolicy::factory(), Exp3Policy::factory(),
      Ucb2Policy::factory(),         TsallisInfPolicy::factory(),
  };
  for (auto& factory : factories) {
    auto policy = factory(context);
    ASSERT_NE(policy, nullptr);
    for (std::size_t t = 0; t < 10; ++t) {
      const std::size_t arm = policy->select(t);
      ASSERT_LT(arm, 3u) << policy->name();
      policy->feedback(t, arm, 0.5);
    }
    EXPECT_FALSE(policy->name().empty());
  }
}

}  // namespace
}  // namespace cea::bandit
