// Parameterized behavioural comparison of the bandit policies on a
// controlled stochastic environment: learning policies must achieve
// sub-linear per-round regret while Random stays linear.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bandit/exp3.h"
#include "bandit/ogd_policy.h"
#include "bandit/policy.h"
#include "bandit/random_policy.h"
#include "bandit/thompson.h"
#include "bandit/tsallis_inf.h"
#include "bandit/ucb2.h"
#include "core/blocked_tsallis_inf.h"
#include "util/rng.h"

namespace cea::bandit {
namespace {

struct PolicyCase {
  std::string name;
  PolicyFactory factory;
  bool learns;  ///< expected to beat Random asymptotically
};

/// Mean loss of arm n in a 4-arm testbed; arm 2 is best.
double arm_mean(std::size_t arm) {
  const double means[] = {0.8, 0.6, 0.2, 0.9};
  return means[arm];
}

double run_regret(const PolicyFactory& factory, std::size_t horizon,
                  std::uint64_t seed) {
  PolicyContext context;
  context.num_models = 4;
  context.switching_cost = 1.0;
  context.seed = seed;
  context.energy_per_sample = {1.0, 2.0, 3.0, 4.0};
  auto policy = factory(context);
  Rng noise(seed ^ 0xABCDEF);
  double total_loss = 0.0;
  for (std::size_t t = 0; t < horizon; ++t) {
    const std::size_t arm = policy->select(t);
    const double loss = arm_mean(arm) + noise.uniform(-0.1, 0.1);
    policy->feedback(t, arm, loss);
    total_loss += arm_mean(arm);
  }
  return total_loss - static_cast<double>(horizon) * arm_mean(2);
}

class RegretBehaviour : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(RegretBehaviour, RegretSubLinearForLearners) {
  const auto& param = GetParam();
  const double regret_short = run_regret(param.factory, 1000, 3);
  const double regret_long = run_regret(param.factory, 4000, 3);
  if (param.learns) {
    // Sub-linear: quadrupling T must grow regret by clearly less than 4x.
    EXPECT_LT(regret_long, regret_short * 3.0 + 50.0) << param.name;
    // And the per-round regret must be small in absolute terms.
    EXPECT_LT(regret_long / 4000.0, 0.2) << param.name;
  } else {
    // Random: per-round regret stays near the mean gap (~0.43).
    EXPECT_GT(regret_long / 4000.0, 0.3) << param.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, RegretBehaviour,
    ::testing::Values(
        PolicyCase{"Random", RandomPolicy::factory(), false},
        PolicyCase{"EXP3", Exp3Policy::factory(), true},
        PolicyCase{"UCB2", Ucb2Policy::factory(), true},
        PolicyCase{"TsallisINF", TsallisInfPolicy::factory(), true},
        PolicyCase{"Thompson", ThompsonSamplingPolicy::factory(), true},
        PolicyCase{"OGD", OgdPolicy::factory(), true},
        // The discounted variant is intentionally absent: its geometric
        // forgetting buys drift tracking at the price of linear stationary
        // regret (see core/test_blocked_tsallis.cpp for its contract).
        PolicyCase{"BlockedTsallisINF",
                   core::BlockedTsallisInfPolicy::factory(), true}),
    [](const ::testing::TestParamInfo<PolicyCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace cea::bandit
