#include "bandit/thompson.h"

#include <gtest/gtest.h>

#include <vector>

namespace cea::bandit {
namespace {

PolicyContext make_context(std::size_t num_models, std::uint64_t seed = 1) {
  PolicyContext context;
  context.num_models = num_models;
  context.seed = seed;
  return context;
}

TEST(Thompson, PosteriorMeanTracksObservations) {
  ThompsonSamplingPolicy policy(make_context(2), 1.0, 0.1);
  for (int i = 0; i < 50; ++i) policy.feedback(i, 0, 0.7);
  EXPECT_NEAR(policy.posterior_mean(0), 0.7, 0.05);
  EXPECT_DOUBLE_EQ(policy.posterior_mean(1), 0.0);  // untouched prior
}

TEST(Thompson, ConvergesToBestArm) {
  ThompsonSamplingPolicy policy(make_context(4, 5), 1.0, 0.25);
  Rng noise(7);
  std::vector<int> late(4, 0);
  for (std::size_t t = 0; t < 3000; ++t) {
    const std::size_t arm = policy.select(t);
    const double mean = arm == 2 ? 0.2 : 0.8;
    policy.feedback(t, arm, mean + noise.uniform(-0.1, 0.1));
    if (t >= 2000) ++late[arm];
  }
  EXPECT_GT(late[2], 800);
}

TEST(Thompson, ExploresInitially) {
  ThompsonSamplingPolicy policy(make_context(5, 9), 1.0, 0.25);
  std::vector<bool> seen(5, false);
  for (std::size_t t = 0; t < 200; ++t) {
    const std::size_t arm = policy.select(t);
    seen[arm] = true;
    policy.feedback(t, arm, 0.5);
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Thompson, PosteriorNarrowsWithData) {
  ThompsonSamplingPolicy policy(make_context(1, 11), 1.0, 0.5);
  // With data, draws for the single arm should concentrate: measure the
  // spread of select() indirectly by the posterior mean stability.
  for (int i = 0; i < 200; ++i) policy.feedback(i, 0, 1.3);
  EXPECT_NEAR(policy.posterior_mean(0), 1.3, 0.02);
}

TEST(Thompson, FactoryProducesWorkingPolicy) {
  auto policy = ThompsonSamplingPolicy::factory()(make_context(3, 13));
  for (std::size_t t = 0; t < 10; ++t) {
    const std::size_t arm = policy->select(t);
    ASSERT_LT(arm, 3u);
    policy->feedback(t, arm, 0.4);
  }
  EXPECT_EQ(policy->name(), "Thompson");
}

}  // namespace
}  // namespace cea::bandit
