#include "core/block_schedule.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cea::core {
namespace {

TEST(BlockSchedule, FormulaMatchesTheorem1) {
  const double u = 2.0;
  const std::size_t n = 6;
  BlockSchedule schedule(u, n);
  for (std::size_t k : {1u, 2u, 5u, 10u, 100u}) {
    const double d = 1.5 * u * std::sqrt(static_cast<double>(k) / n);
    EXPECT_NEAR(schedule.block_real_length(k), d, 1e-12);
    EXPECT_EQ(schedule.block_length(k),
              static_cast<std::size_t>(std::max(std::ceil(d), 1.0)));
    EXPECT_NEAR(schedule.learning_rate(k),
                2.0 / (d + 1.0) * std::sqrt(2.0 / k), 1e-12);
  }
}

TEST(BlockSchedule, BlocksGrow) {
  BlockSchedule schedule(1.5, 6);
  EXPECT_LE(schedule.block_length(1), schedule.block_length(10));
  EXPECT_LT(schedule.block_length(10), schedule.block_length(1000));
}

TEST(BlockSchedule, LearningRatesDecay) {
  BlockSchedule schedule(1.5, 6);
  double prev = schedule.learning_rate(1);
  for (std::size_t k = 2; k < 50; ++k) {
    const double eta = schedule.learning_rate(k);
    EXPECT_LE(eta, prev + 1e-15);
    prev = eta;
  }
}

TEST(BlockSchedule, MinimumBlockLengthIsOne) {
  // Tiny switching cost: every block collapses to a single slot.
  BlockSchedule schedule(1e-6, 6);
  for (std::size_t k = 1; k < 20; ++k)
    EXPECT_EQ(schedule.block_length(k), 1u);
}

TEST(BlockSchedule, HigherSwitchingCostLongerBlocks) {
  BlockSchedule cheap(0.5, 6), expensive(5.0, 6);
  EXPECT_LE(cheap.block_length(10), expensive.block_length(10));
  EXPECT_LT(cheap.block_length(100), expensive.block_length(100));
}

TEST(BlockSchedule, MoreModelsShorterBlocks) {
  BlockSchedule few(2.0, 2), many(2.0, 32);
  EXPECT_GE(few.block_length(50), many.block_length(50));
}

TEST(BlockSchedule, BlocksCoverHorizonExactlyOrMore) {
  BlockSchedule schedule(2.0, 6);
  const std::size_t horizon = 160;
  const std::size_t blocks = schedule.blocks_for_horizon(horizon);
  std::size_t covered = 0;
  for (std::size_t k = 1; k <= blocks; ++k) covered += schedule.block_length(k);
  EXPECT_GE(covered, horizon);
  // One fewer block must not cover it.
  EXPECT_LT(covered - schedule.block_length(blocks), horizon);
}

TEST(BlockSchedule, BlockCountWithinTheorem1Bound) {
  for (double u : {0.5, 1.0, 2.5, 5.0}) {
    for (std::size_t horizon : {100u, 500u, 2000u}) {
      BlockSchedule schedule(u, 6);
      EXPECT_LE(static_cast<double>(schedule.blocks_for_horizon(horizon)),
                schedule.block_count_bound(horizon) + 1.0)
          << "u=" << u << " T=" << horizon;
    }
  }
}

TEST(BlockSchedule, SwitchCountSubLinearInHorizon) {
  BlockSchedule schedule(2.0, 6);
  const double k1 = static_cast<double>(schedule.blocks_for_horizon(1000));
  const double k2 = static_cast<double>(schedule.blocks_for_horizon(8000));
  // T^{2/3} growth: 8x horizon -> at most 4x blocks (plus slack).
  EXPECT_LT(k2, 4.5 * k1);
}

TEST(BlockSchedule, ClampsNonPositiveSwitchingCost) {
  BlockSchedule schedule(0.0, 6);
  EXPECT_GT(schedule.switching_cost(), 0.0);
  EXPECT_GE(schedule.block_length(1), 1u);
}

}  // namespace
}  // namespace cea::core
