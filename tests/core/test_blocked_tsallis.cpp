#include "core/blocked_tsallis_inf.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace cea::core {
namespace {

bandit::PolicyContext make_context(std::size_t num_models, double u,
                                   std::uint64_t seed = 1) {
  bandit::PolicyContext context;
  context.num_models = num_models;
  context.switching_cost = u;
  context.seed = seed;
  return context;
}

TEST(BlockedTsallis, HoldsArmWithinBlock) {
  BlockedTsallisInfPolicy policy(make_context(4, 3.0));
  const std::size_t first_len = policy.schedule().block_length(1);
  const std::size_t arm0 = policy.select(0);
  policy.feedback(0, arm0, 0.5);
  for (std::size_t t = 1; t < first_len; ++t) {
    EXPECT_EQ(policy.select(t), arm0);
    policy.feedback(t, arm0, 0.5);
  }
}

TEST(BlockedTsallis, SwitchesOnlyAtBlockBoundaries) {
  BlockedTsallisInfPolicy policy(make_context(4, 2.0, 3));
  std::size_t prev = SIZE_MAX;
  std::vector<std::size_t> switch_slots;
  std::size_t expected_boundary = 0;
  std::vector<std::size_t> boundaries;
  for (std::size_t k = 1; expected_boundary < 500; ++k) {
    boundaries.push_back(expected_boundary);
    expected_boundary += policy.schedule().block_length(k);
  }
  for (std::size_t t = 0; t < 500; ++t) {
    const std::size_t arm = policy.select(t);
    if (arm != prev) switch_slots.push_back(t);
    prev = arm;
    policy.feedback(t, arm, 0.5);
  }
  for (std::size_t s : switch_slots) {
    EXPECT_NE(std::find(boundaries.begin(), boundaries.end(), s),
              boundaries.end())
        << "switch at non-boundary slot " << s;
  }
}

TEST(BlockedTsallis, SwitchCountBoundedByBlockCount) {
  BlockedTsallisInfPolicy policy(make_context(6, 1.5, 5));
  const std::size_t horizon = 1000;
  std::size_t switches = 0;
  std::size_t prev = SIZE_MAX;
  Rng noise(9);
  for (std::size_t t = 0; t < horizon; ++t) {
    const std::size_t arm = policy.select(t);
    if (arm != prev) ++switches;
    prev = arm;
    policy.feedback(t, arm, 0.5 + noise.uniform(-0.1, 0.1));
  }
  EXPECT_LE(switches, policy.schedule().blocks_for_horizon(horizon));
}

TEST(BlockedTsallis, ConvergesToBestArm) {
  BlockedTsallisInfPolicy policy(make_context(4, 1.0, 7));
  Rng noise(11);
  std::vector<int> late_counts(4, 0);
  const std::size_t horizon = 6000;
  for (std::size_t t = 0; t < horizon; ++t) {
    const std::size_t arm = policy.select(t);
    const double mean = arm == 1 ? 0.2 : 0.8;
    policy.feedback(t, arm, mean + noise.uniform(-0.1, 0.1));
    if (t >= horizon / 2) ++late_counts[arm];
  }
  EXPECT_GT(late_counts[1], late_counts[0]);
  EXPECT_GT(late_counts[1], late_counts[2]);
  EXPECT_GT(late_counts[1], late_counts[3]);
  EXPECT_GT(late_counts[1],
            static_cast<int>(horizon / 2) * 6 / 10);  // >60% exploitation
}

TEST(BlockedTsallis, ImportanceWeightedEstimatesUnbiasedDirectionally) {
  // After many blocks the cumulative loss estimate of the worst arm must
  // exceed that of the best arm.
  BlockedTsallisInfPolicy policy(make_context(2, 1.0, 13));
  Rng noise(17);
  for (std::size_t t = 0; t < 3000; ++t) {
    const std::size_t arm = policy.select(t);
    policy.feedback(t, arm, (arm == 0 ? 0.2 : 1.0) + noise.uniform(-0.05, 0.05));
  }
  const auto& estimates = policy.cumulative_loss_estimates();
  EXPECT_GT(estimates[1], estimates[0]);
}

TEST(BlockedTsallis, ProbabilitiesFormDistribution) {
  BlockedTsallisInfPolicy policy(make_context(5, 2.0, 19));
  policy.select(0);
  const auto& p = policy.current_probabilities();
  double total = 0.0;
  for (double v : p) {
    EXPECT_GT(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(BlockedTsallis, FirstBlockIsUniform) {
  BlockedTsallisInfPolicy policy(make_context(4, 2.0, 23));
  policy.select(0);
  for (double v : policy.current_probabilities()) EXPECT_NEAR(v, 0.25, 1e-9);
}

TEST(BlockedTsallis, CompletedBlocksAdvance) {
  BlockedTsallisInfPolicy policy(make_context(3, 1.0, 29));
  const std::size_t len1 = policy.schedule().block_length(1);
  for (std::size_t t = 0; t < len1; ++t) {
    const auto arm = policy.select(t);
    policy.feedback(t, arm, 0.4);
  }
  EXPECT_EQ(policy.completed_blocks(), 1u);
}

TEST(BlockedTsallis, DeterministicGivenSeed) {
  BlockedTsallisInfPolicy a(make_context(4, 1.5, 31));
  BlockedTsallisInfPolicy b(make_context(4, 1.5, 31));
  for (std::size_t t = 0; t < 200; ++t) {
    const auto arm_a = a.select(t);
    const auto arm_b = b.select(t);
    EXPECT_EQ(arm_a, arm_b);
    a.feedback(t, arm_a, 0.3);
    b.feedback(t, arm_b, 0.3);
  }
}

TEST(BlockedTsallis, DiscountedEstimatesStayBounded) {
  // With discount < 1 the cumulative table is a geometric series: bounded,
  // unlike the undiscounted table which grows with time.
  BlockedTsallisInfPolicy policy(make_context(3, 1.0, 43), 0.9);
  for (std::size_t t = 0; t < 5000; ++t) {
    const auto arm = policy.select(t);
    policy.feedback(t, arm, 1.0);
  }
  for (double c : policy.cumulative_loss_estimates()) {
    EXPECT_LT(c, 1e4);  // undiscounted would reach ~importance-weighted 5e3+
  }
}

TEST(BlockedTsallis, DiscountedTracksArmSwap) {
  // Arm qualities swap mid-stream: the discounted policy must host the new
  // best arm most of the time in the final stretch.
  BlockedTsallisInfPolicy policy(make_context(2, 1.0, 47), 0.9);
  Rng noise(53);
  const std::size_t horizon = 6000, swap = 2000;
  std::vector<int> late(2, 0);
  for (std::size_t t = 0; t < horizon; ++t) {
    const auto arm = policy.select(t);
    const std::size_t best = t < swap ? 0u : 1u;
    policy.feedback(t, arm,
                    (arm == best ? 0.2 : 0.9) + noise.uniform(-0.05, 0.05));
    if (t >= horizon - 1500) ++late[arm];
  }
  EXPECT_GT(late[1], late[0]);
}

TEST(BlockedTsallis, DiscountOneMatchesBaseAlgorithm) {
  BlockedTsallisInfPolicy base(make_context(4, 1.5, 59));
  BlockedTsallisInfPolicy discounted(make_context(4, 1.5, 59), 1.0);
  for (std::size_t t = 0; t < 300; ++t) {
    const auto a = base.select(t);
    const auto b = discounted.select(t);
    EXPECT_EQ(a, b);
    base.feedback(t, a, 0.4);
    discounted.feedback(t, b, 0.4);
  }
}

TEST(BlockedTsallis, HigherSwitchingCostFewerSwitches) {
  auto count_switches = [](double u) {
    BlockedTsallisInfPolicy policy(make_context(4, u, 37));
    std::size_t switches = 0;
    std::size_t prev = SIZE_MAX;
    Rng noise(41);
    for (std::size_t t = 0; t < 2000; ++t) {
      const auto arm = policy.select(t);
      if (arm != prev) ++switches;
      prev = arm;
      policy.feedback(t, arm, 0.5 + noise.uniform(-0.2, 0.2));
    }
    return switches;
  };
  EXPECT_GT(count_switches(0.2), count_switches(8.0));
}

}  // namespace
}  // namespace cea::core
