#include "core/blocked_tsallis_fleet.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "bandit/fleet_policy.h"
#include "core/blocked_tsallis_inf.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace cea::core {
namespace {

bandit::FleetPolicyContext make_context(std::size_t edges,
                                        std::size_t models,
                                        std::uint64_t run_seed,
                                        std::size_t horizon = 200) {
  bandit::FleetPolicyContext context;
  context.num_edges = edges;
  context.num_models = models;
  context.horizon = horizon;
  context.run_seed = run_seed;
  context.energy_per_sample.resize(models);
  for (std::size_t n = 0; n < models; ++n)
    context.energy_per_sample[n] = 0.1 * static_cast<double>(n + 1);
  context.switching_cost.assign(edges, 1.5);
  return context;
}

/// Deterministic pseudo-loss for (edge, t, arm), the same for both sides.
double loss_for(std::size_t edge, std::size_t t, std::size_t arm) {
  const double u = static_cast<double>(
                       mix64(stream_seed(99, edge, t) + arm) >> 11) *
                   0x1.0p-53;
  return 0.1 * static_cast<double>(arm) + 0.5 * u;
}

/// Drives the SoA fleet and a PerEdgeFleetAdapter over per-edge
/// BlockedTsallisInfPolicy instances in lockstep, asserting bit-equality of
/// every arm, probability table and cumulative-loss table. `use_presolve`
/// additionally checks the next_solve descriptions agree field for field
/// (both sides then solve internally, which the batch path reproduces).
void run_lockstep(double discount, bool use_presolve) {
  const std::size_t edges = 6, models = 4, horizon = 240;
  const std::uint64_t run_seed = 17;
  const auto context = make_context(edges, models, run_seed, horizon);

  auto fleet_factory = discount == 1.0
                           ? BlockedTsallisFleetPolicy::factory()
                           : BlockedTsallisFleetPolicy::discounted_factory(
                                 discount);
  auto per_edge_factory =
      discount == 1.0
          ? bandit::adapt_per_edge(BlockedTsallisInfPolicy::factory())
          : bandit::adapt_per_edge(
                BlockedTsallisInfPolicy::discounted_factory(discount));
  auto fleet = fleet_factory(context);
  auto reference = per_edge_factory(context);
  auto* soa = dynamic_cast<BlockedTsallisFleetPolicy*>(fleet.get());
  ASSERT_NE(soa, nullptr);
  auto* adapter = dynamic_cast<bandit::PerEdgeFleetAdapter*>(reference.get());
  ASSERT_NE(adapter, nullptr);
  EXPECT_TRUE(fleet->supports_batch_solve());
  EXPECT_TRUE(reference->supports_batch_solve());

  for (std::size_t t = 0; t < horizon; ++t) {
    if (use_presolve) {
      // The solve-due flag and the frozen solve inputs must agree per edge
      // at slot start (this is what lets the simulator batch across edges).
      for (std::size_t e = 0; e < edges; ++e) {
        bandit::TsallisSolveRequest fleet_req, ref_req;
        const bool fleet_due = fleet->next_solve(e, fleet_req);
        const bool ref_due = reference->next_solve(e, ref_req);
        ASSERT_EQ(fleet_due, ref_due) << "edge " << e << " slot " << t;
        if (fleet_due) {
          ASSERT_EQ(fleet_req.cumulative_losses.size(),
                    ref_req.cumulative_losses.size());
          for (std::size_t n = 0; n < models; ++n)
            EXPECT_EQ(fleet_req.cumulative_losses[n],
                      ref_req.cumulative_losses[n]);
          EXPECT_EQ(fleet_req.eta, ref_req.eta);
          EXPECT_EQ(fleet_req.scaled_lambda_warm, ref_req.scaled_lambda_warm);
        }
      }
    }
    for (std::size_t e = 0; e < edges; ++e) {
      const std::size_t fleet_arm = fleet->select(e, t);
      const std::size_t ref_arm = reference->select(e, t);
      ASSERT_EQ(fleet_arm, ref_arm) << "edge " << e << " slot " << t;
      const double loss = loss_for(e, t, fleet_arm);
      fleet->feedback(e, t, fleet_arm, loss);
      reference->feedback(e, t, ref_arm, loss);
    }
  }

  // End state: Chat tables and probabilities bitwise equal per edge.
  for (std::size_t e = 0; e < edges; ++e) {
    auto* ref_policy = dynamic_cast<BlockedTsallisInfPolicy*>(
        &adapter->edge_policy(e));
    ASSERT_NE(ref_policy, nullptr);
    EXPECT_EQ(soa->completed_blocks(e), ref_policy->completed_blocks());
    const auto soa_losses = soa->cumulative_losses(e);
    const auto& ref_losses = ref_policy->cumulative_loss_estimates();
    const auto soa_probs = soa->probabilities(e);
    const auto& ref_probs = ref_policy->current_probabilities();
    for (std::size_t n = 0; n < models; ++n) {
      EXPECT_EQ(soa_losses[n], ref_losses[n]) << "edge " << e << " arm " << n;
      EXPECT_EQ(soa_probs[n], ref_probs[n]) << "edge " << e << " arm " << n;
    }
  }
}

TEST(BlockedTsallisFleet, BitIdenticalToPerEdgePolicies) {
  run_lockstep(/*discount=*/1.0, /*use_presolve=*/false);
}

TEST(BlockedTsallisFleet, SolveRequestsMatchPerEdgePolicies) {
  run_lockstep(/*discount=*/1.0, /*use_presolve=*/true);
}

TEST(BlockedTsallisFleet, DiscountedVariantBitIdentical) {
  run_lockstep(/*discount=*/0.9, /*use_presolve=*/true);
}

TEST(BlockedTsallisFleet, SeedsMatchPolicyStreamSeed) {
  // Edge e of the fleet must consume the stream a per-edge policy seeded
  // with policy_stream_seed(run_seed, e) would; distinct edges therefore
  // make different first-block choices eventually.
  const auto context = make_context(32, 5, 3);
  auto fleet = BlockedTsallisFleetPolicy::factory()(context);
  bool any_differs = false;
  const std::size_t first = fleet->select(0, 0);
  for (std::size_t e = 1; e < 32; ++e)
    any_differs |= fleet->select(e, 0) != first;
  EXPECT_TRUE(any_differs);
}

TEST(BlockedTsallisFleet, SimulatorRunFleetMatchesRun) {
  // Through the full simulator: run() over per-edge instances and
  // run_fleet() over the SoA fleet must produce bit-identical RunResults.
  sim::SimConfig config;
  config.num_edges = 8;
  config.horizon = 80;
  config.workload.num_slots = 80;
  config.loss_draw_cap = 32;
  config.seed = 11;
  const auto env = sim::Environment::make_parametric(config);
  const auto combo = sim::ours_combo();
  const sim::Simulator simulator(env);
  const auto per_edge =
      simulator.run(combo.policy, combo.trader, 5, combo.name);
  const auto fleet =
      simulator.run_fleet(combo.fleet_policy, combo.trader, 5, combo.name);
  EXPECT_EQ(per_edge.inference_cost, fleet.inference_cost);
  EXPECT_EQ(per_edge.switching_cost, fleet.switching_cost);
  EXPECT_EQ(per_edge.trading_cost, fleet.trading_cost);
  EXPECT_EQ(per_edge.emissions, fleet.emissions);
  EXPECT_EQ(per_edge.accuracy, fleet.accuracy);
  EXPECT_EQ(per_edge.selection_counts, fleet.selection_counts);
  EXPECT_EQ(per_edge.total_switches, fleet.total_switches);
}

}  // namespace
}  // namespace cea::core
