#include "core/carbon_trader.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cea::core {
namespace {

trading::TraderContext make_context() {
  trading::TraderContext context;
  context.horizon = 125;  // cube root = 5, convenient
  context.carbon_cap = 250.0;
  context.max_trade_per_slot = 10.0;
  return context;
}

TEST(OnlineCarbonTrader, StepSizesScaleAsTMinusThird) {
  OnlineTraderConfig config;
  config.gamma1_scale = 1.0;
  config.gamma2_scale = 40.0;
  OnlineCarbonTrader trader(make_context(), config);
  EXPECT_NEAR(trader.gamma1(), 1.0 / 5.0, 1e-12);
  EXPECT_NEAR(trader.gamma2(), 40.0 / 5.0, 1e-12);
}

TEST(OnlineCarbonTrader, FirstSlotReturnsInitialDecision) {
  OnlineTraderConfig config;
  config.initial_buy = 1.5;
  config.initial_sell = 0.5;
  OnlineCarbonTrader trader(make_context(), config);
  const auto d = trader.decide(0, {8.0, 7.2});
  EXPECT_DOUBLE_EQ(d.buy, 1.5);
  EXPECT_DOUBLE_EQ(d.sell, 0.5);
}

TEST(OnlineCarbonTrader, DualAscentMatchesEquationFive) {
  OnlineCarbonTrader trader(make_context(), {});
  const trading::TradeObservation obs{8.0, 7.2};
  // cap share = 250/125 = 2. g = e - 2 - z + w.
  trader.feedback(0, 5.0, obs, {1.0, 0.0});
  // lambda = max(0, 0 + gamma1 * (5 - 2 - 1)) = gamma1 * 2.
  EXPECT_NEAR(trader.lambda(), trader.gamma1() * 2.0, 1e-12);
}

TEST(OnlineCarbonTrader, LambdaStaysNonNegative) {
  OnlineCarbonTrader trader(make_context(), {});
  const trading::TradeObservation obs{8.0, 7.2};
  trader.feedback(0, 0.0, obs, {0.0, 0.0});  // g = -2 < 0
  EXPECT_DOUBLE_EQ(trader.lambda(), 0.0);
}

TEST(OnlineCarbonTrader, PrimalStepMatchesClosedForm) {
  OnlineTraderConfig config;
  config.gamma2_scale = 10.0;  // gamma2 = 2
  OnlineCarbonTrader trader(make_context(), config);
  const trading::TradeObservation obs{6.0, 5.4};
  // Build history: emission 4 -> g = 4 - 2 = 2, lambda = gamma1*2 = 0.4.
  trader.feedback(0, 4.0, obs, {0.0, 0.0});
  const double lambda = trader.lambda();
  const auto d = trader.decide(1, {9.0, 8.1});
  // z = clamp(0 + 2*(lambda - 6), 0, 10) = 0 since lambda << 6.
  EXPECT_DOUBLE_EQ(d.buy, 0.0);
  // w = clamp(0 + 2*(5.4 - lambda), 0, 10) = 2*(5.4-lambda).
  EXPECT_NEAR(d.sell, 2.0 * (5.4 - lambda), 1e-12);
}

TEST(OnlineCarbonTrader, BuysWhenDualPressureExceedsPrice) {
  OnlineTraderConfig config;
  config.gamma1_scale = 50.0;  // aggressive dual so lambda rises fast
  config.gamma2_scale = 10.0;
  OnlineCarbonTrader trader(make_context(), config);
  const trading::TradeObservation obs{6.0, 5.4};
  for (std::size_t t = 0; t < 20; ++t) {
    const auto d = trader.decide(t, obs);
    trader.feedback(t, 8.0, obs, d);  // persistent over-emission
  }
  EXPECT_GT(trader.lambda(), 6.0);
  const auto d = trader.decide(20, obs);
  EXPECT_GT(d.buy, 0.0);
}

TEST(OnlineCarbonTrader, DecisionsRespectLiquidityBox) {
  OnlineTraderConfig config;
  config.gamma1_scale = 100.0;
  config.gamma2_scale = 500.0;
  OnlineCarbonTrader trader(make_context(), config);
  const trading::TradeObservation obs{6.0, 5.4};
  for (std::size_t t = 0; t < 50; ++t) {
    const auto d = trader.decide(t, obs);
    EXPECT_GE(d.buy, 0.0);
    EXPECT_LE(d.buy, 10.0);
    EXPECT_GE(d.sell, 0.0);
    EXPECT_LE(d.sell, 10.0);
    trader.feedback(t, 8.0, obs, d);
  }
}

TEST(OnlineCarbonTrader, UsesOnlyPastPrices) {
  // Two traders seeing different *current* quotes but identical history
  // must decide identically: Algorithm 2 never reads the time-t quote.
  OnlineCarbonTrader a(make_context(), {});
  OnlineCarbonTrader b(make_context(), {});
  const trading::TradeObservation history{7.0, 6.3};
  a.feedback(0, 4.0, history, {1.0, 0.0});
  b.feedback(0, 4.0, history, {1.0, 0.0});
  const auto da = a.decide(1, {5.9, 5.31});
  const auto db = b.decide(1, {10.9, 9.81});
  EXPECT_DOUBLE_EQ(da.buy, db.buy);
  EXPECT_DOUBLE_EQ(da.sell, db.sell);
}

TEST(OnlineCarbonTrader, HandComputedIteratesMatchAlgorithmTwo) {
  // Fully hand-computed two-slot trace with the default scales on the
  // horizon-125 context: gamma1 = 2/5 = 0.4, gamma2 = 10/5 = 2,
  // R/T = 250/125 = 2, liquidity cap 10.
  OnlineCarbonTrader trader(make_context(), {});
  ASSERT_DOUBLE_EQ(trader.gamma1(), 0.4);
  ASSERT_DOUBLE_EQ(trader.gamma2(), 2.0);
  const trading::TradeObservation obs{8.0, 7.2};

  // Slot 0: no (t-1) information yet -> hold Zbar^0 = (0, 0).
  const auto d0 = trader.decide(0, obs);
  EXPECT_DOUBLE_EQ(d0.buy, 0.0);
  EXPECT_DOUBLE_EQ(d0.sell, 0.0);

  // Dual: g = 5 - 2 - 0 + 0 = 3, lambda = [0 + 0.4 * 3]^+ = 1.2.
  trader.feedback(0, 5.0, obs, d0);
  EXPECT_NEAR(trader.lambda(), 1.2, 1e-12);

  // Slot 1 primal closed form (lambda = 1.2, prices from slot 0):
  //   z = clamp(0 + 2 * (1.2 - 8.0), 0, 10) = 0        (clamped at 0)
  //   w = clamp(0 + 2 * (7.2 - 1.2), 0, 10) = 10       (clamped at cap)
  const auto d1 = trader.decide(1, obs);
  EXPECT_DOUBLE_EQ(d1.buy, 0.0);
  EXPECT_DOUBLE_EQ(d1.sell, 10.0);
}

TEST(OnlineCarbonTrader, DualAscentUsesExecutedTrade) {
  // When the simulator's holdings clamp shrinks the executed sell below
  // the decided one, the dual must ascend with the *executed* trade.
  OnlineCarbonTrader trader(make_context(), {});
  const trading::TradeObservation obs{8.0, 7.2};
  trader.feedback(0, 5.0, obs, {0.0, 0.0});  // lambda = 1.2 as above
  const auto decided = trader.decide(1, obs);
  ASSERT_DOUBLE_EQ(decided.sell, 10.0);
  // Executed sell clamped to 4: g = 1 - 2 - 0 + 4 = 3,
  // lambda = [1.2 + 0.4 * 3]^+ = 2.4. (With the decided sell of 10 it
  // would have been [1.2 + 0.4 * 9]^+ = 4.8.)
  trader.feedback(1, 1.0, obs, {0.0, 4.0});
  EXPECT_NEAR(trader.lambda(), 2.4, 1e-12);
}

TEST(OnlineCarbonTrader, PrimalRecentersOnExecutedTrade) {
  // The proximal step's center Zbar^{t-1} is the executed trade, not the
  // decided one: w^2 = clamp(4 + 2 * (7.2 - 2.4), 0, 10) = 10 but computed
  // from the executed center 4, visible with a smaller step size.
  OnlineTraderConfig config;
  config.gamma2_scale = 1.0;  // gamma2 = 0.2
  OnlineCarbonTrader trader(make_context(), config);
  const trading::TradeObservation obs{8.0, 7.2};
  trader.feedback(0, 5.0, obs, {0.0, 0.0});  // lambda = 1.2
  (void)trader.decide(1, obs);
  trader.feedback(1, 1.0, obs, {0.0, 4.0});  // lambda = 2.4, center (0, 4)
  const auto d2 = trader.decide(2, obs);
  // w = clamp(4 + 0.2 * (7.2 - 2.4), 0, 10) = 4.96.
  EXPECT_NEAR(d2.sell, 4.96, 1e-12);
  // z = clamp(0 + 0.2 * (2.4 - 8.0), 0, 10) = 0.
  EXPECT_DOUBLE_EQ(d2.buy, 0.0);
}

TEST(OnlineCarbonTrader, LongRunCoversEmissions) {
  // Stationary emissions above the cap share: over a long horizon the
  // cumulative net purchase must approach the cumulative uncovered
  // emission (fit vanishing in time-average).
  trading::TraderContext context;
  context.horizon = 1000;
  context.carbon_cap = 1000.0;  // share 1/slot
  context.max_trade_per_slot = 10.0;
  OnlineCarbonTrader trader(context, {});
  const trading::TradeObservation obs{8.0, 7.2};
  double net = 0.0, uncovered = 0.0;
  for (std::size_t t = 0; t < context.horizon; ++t) {
    const auto d = trader.decide(t, obs);
    trader.feedback(t, 3.0, obs, d);
    net += d.buy - d.sell;
    uncovered += 3.0 - 1.0;
  }
  EXPECT_NEAR(net / uncovered, 1.0, 0.15);
}

}  // namespace
}  // namespace cea::core
