#include "core/controller.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cea::core {
namespace {

CarbonNeutralController make_controller(std::size_t edges,
                                        std::size_t models) {
  std::vector<bandit::PolicyContext> contexts(edges);
  for (std::size_t i = 0; i < edges; ++i) {
    contexts[i].num_models = models;
    contexts[i].switching_cost = 1.0 + 0.2 * static_cast<double>(i);
    contexts[i].seed = 100 + i;
  }
  trading::TraderContext trader_context;
  trader_context.horizon = 160;
  trader_context.carbon_cap = 500.0;
  trader_context.max_trade_per_slot = 20.0;
  return CarbonNeutralController(std::move(contexts), trader_context);
}

TEST(Controller, SelectsOneModelPerEdge) {
  auto controller = make_controller(5, 6);
  const auto models = controller.select_models(0);
  ASSERT_EQ(models.size(), 5u);
  for (auto m : models) EXPECT_LT(m, 6u);
}

TEST(Controller, FullSlotProtocolRuns) {
  auto controller = make_controller(3, 4);
  Rng noise(5);
  for (std::size_t t = 0; t < 50; ++t) {
    const auto models = controller.select_models(t);
    const trading::TradeObservation quote{8.0, 7.2};
    const auto trade = controller.decide_trade(t, quote);
    EXPECT_GE(trade.buy, 0.0);
    EXPECT_GE(trade.sell, 0.0);
    for (std::size_t i = 0; i < models.size(); ++i) {
      controller.report_inference(t, i, models[i],
                                  0.5 + noise.uniform(-0.1, 0.1));
    }
    controller.report_slot(t, 4.0, quote, trade);
  }
  EXPECT_GE(controller.trader().lambda(), 0.0);
}

TEST(Controller, EdgesLearnIndependently) {
  auto controller = make_controller(2, 3);
  // Edge 0: arm 0 best. Edge 1: arm 2 best.
  std::vector<std::vector<int>> late_counts(2, std::vector<int>(3, 0));
  const std::size_t horizon = 4000;
  for (std::size_t t = 0; t < horizon; ++t) {
    const auto models = controller.select_models(t);
    for (std::size_t i = 0; i < 2; ++i) {
      const std::size_t best = (i == 0) ? 0u : 2u;
      const double loss = models[i] == best ? 0.2 : 0.9;
      controller.report_inference(t, i, models[i], loss);
      if (t > horizon / 2) ++late_counts[i][models[i]];
    }
    controller.report_slot(t, 3.0, {8.0, 7.2}, {0.0, 0.0});
  }
  EXPECT_GT(late_counts[0][0], late_counts[0][1] + late_counts[0][2]);
  EXPECT_GT(late_counts[1][2], late_counts[1][0] + late_counts[1][1]);
}

TEST(Controller, ExposesEdgePolicies) {
  auto controller = make_controller(2, 4);
  EXPECT_EQ(controller.num_edges(), 2u);
  controller.select_models(0);
  EXPECT_EQ(controller.edge_policy(0).current_probabilities().size(), 4u);
}

}  // namespace
}  // namespace cea::core
