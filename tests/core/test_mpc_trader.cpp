#include "core/mpc_trader.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cea::core {
namespace {

trading::TraderContext make_context(std::size_t horizon = 200,
                                    double cap = 400.0,
                                    double max_trade = 10.0) {
  trading::TraderContext context;
  context.horizon = horizon;
  context.carbon_cap = cap;
  context.max_trade_per_slot = max_trade;
  return context;
}

TEST(MpcTrader, NoTradeBeforeAnyObservation) {
  MpcCarbonTrader trader(make_context(), 8);
  const auto d = trader.decide(0, {8.0, 7.2});
  EXPECT_DOUBLE_EQ(d.buy, 0.0);
  EXPECT_DOUBLE_EQ(d.sell, 0.0);
}

TEST(MpcTrader, TracksEmissionEstimate) {
  MpcCarbonTrader trader(make_context(), 8);
  const trading::TradeObservation obs{8.0, 7.2};
  trader.feedback(0, 5.0, obs, {});
  EXPECT_DOUBLE_EQ(trader.emission_estimate(), 5.0);
  trader.feedback(1, 10.0, obs, {});
  EXPECT_GT(trader.emission_estimate(), 5.0);
  EXPECT_LT(trader.emission_estimate(), 10.0);
}

TEST(MpcTrader, BuysUnderPersistentDeficit) {
  // cap share 2/slot, emissions 5/slot: the prorated balance goes negative
  // and the LP must buy.
  MpcCarbonTrader trader(make_context(), 8);
  const trading::TradeObservation obs{8.0, 7.2};
  double net = 0.0;
  for (std::size_t t = 0; t < 150; ++t) {
    const auto d = trader.decide(t, obs);
    EXPECT_GE(d.buy, 0.0);
    EXPECT_LE(d.buy, 10.0);
    EXPECT_GE(d.sell, 0.0);
    EXPECT_LE(d.sell, 10.0);
    trader.feedback(t, 5.0, obs, d);
    net += d.buy - d.sell;
  }
  const double uncovered = (5.0 - 2.0) * 150.0;
  EXPECT_NEAR(net / uncovered, 1.0, 0.2);
}

TEST(MpcTrader, SellsUnderSurplus) {
  // cap share 2/slot, emissions 0.5/slot: surplus is sold.
  MpcCarbonTrader trader(make_context(), 8);
  const trading::TradeObservation obs{8.0, 7.2};
  double sold = 0.0;
  for (std::size_t t = 0; t < 100; ++t) {
    const auto d = trader.decide(t, obs);
    trader.feedback(t, 0.5, obs, d);
    sold += d.sell;
  }
  EXPECT_GT(sold, 50.0);
}

TEST(MpcTrader, InfeasibleWindowBuysAtCap) {
  // Deficit far beyond per-slot liquidity: the window LP is infeasible,
  // the fallback buys the cap.
  MpcCarbonTrader trader(make_context(100, 0.0, 2.0), 4);
  const trading::TradeObservation obs{8.0, 7.2};
  trader.feedback(0, 50.0, obs, {});
  const auto d = trader.decide(1, obs);
  EXPECT_DOUBLE_EQ(d.buy, 2.0);
}

TEST(MpcTrader, PrefersCheapSlotsWithPerfectForecast) {
  // Deterministic alternating prices: with an AR(1) fit over a long
  // history the trader should buy more on cheap slots than dear slots.
  MpcCarbonTrader trader(make_context(400, 400.0, 10.0), 6, 1.0);
  double cheap_bought = 0.0, dear_bought = 0.0;
  for (std::size_t t = 0; t < 300; ++t) {
    const bool cheap = (t % 2 == 0);
    const double price = cheap ? 6.0 : 10.0;
    const trading::TradeObservation obs{price, 0.9 * price};
    const auto d = trader.decide(t, obs);
    trader.feedback(t, 3.0, obs, d);
    if (t > 100) {
      // The decision at slot t executes at slot t's actual price.
      if (cheap) cheap_bought += d.buy;
      else dear_bought += d.buy;
    }
  }
  // AR(1) on an alternating series learns the flip (negative slope), so
  // the forecast routes purchases to the actually-cheap slots.
  EXPECT_GT(cheap_bought, dear_bought);
}

TEST(MpcTrader, FactoryWorks) {
  auto trader = MpcCarbonTrader::factory(6)(make_context());
  EXPECT_EQ(trader->name(), "MPC");
  trader->feedback(0, 3.0, {8.0, 7.2}, {});
  const auto d = trader->decide(1, {8.0, 7.2});
  EXPECT_GE(d.buy, 0.0);
}

}  // namespace
}  // namespace cea::core
