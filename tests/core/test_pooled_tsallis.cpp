#include "core/pooled_tsallis.h"

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "util/rng.h"

namespace cea::core {
namespace {

bandit::PolicyContext make_context(std::size_t num_models, std::size_t edge,
                                   std::uint64_t seed = 1) {
  bandit::PolicyContext context;
  context.num_models = num_models;
  context.switching_cost = 1.0;
  context.seed = seed + edge;
  context.edge = edge;
  return context;
}

TEST(PooledTsallis, CoordinatorAccumulatesImportanceWeighted) {
  PooledTsallisCoordinator coordinator(3);
  coordinator.report_block(1, 2.0, 0.5);
  EXPECT_DOUBLE_EQ(coordinator.cumulative_losses()[1], 4.0);
  EXPECT_DOUBLE_EQ(coordinator.cumulative_losses()[0], 0.0);
  EXPECT_EQ(coordinator.blocks_completed(), 1u);
}

TEST(PooledTsallis, EdgesShareEvidence) {
  auto coordinator = std::make_shared<PooledTsallisCoordinator>(2);
  PooledTsallisPolicy edge_a(make_context(2, 0), coordinator);
  PooledTsallisPolicy edge_b(make_context(2, 1), coordinator);
  // Edge A plays and reports; edge B's probabilities must reflect it.
  Rng noise(3);
  for (std::size_t t = 0; t < 400; ++t) {
    const auto arm_a = edge_a.select(t);
    edge_a.feedback(t, arm_a, arm_a == 0 ? 0.1 : 1.0);
    const auto arm_b = edge_b.select(t);
    edge_b.feedback(t, arm_b, arm_b == 0 ? 0.1 : 1.0);
  }
  EXPECT_GT(coordinator->cumulative_losses()[1],
            coordinator->cumulative_losses()[0]);
  edge_b.select(400);
  EXPECT_GT(edge_b.current_probabilities()[0], 0.7);
}

TEST(PooledTsallis, FactoryResetsPerRunAtEdgeZero) {
  auto factory = pooled_tsallis_factory();
  // Run 1: edges 0 and 1 share; feed heavy loss into arm 0.
  auto run1_edge0 = factory(make_context(2, 0, 10));
  auto run1_edge1 = factory(make_context(2, 1, 10));
  for (std::size_t t = 0; t < 100; ++t) {
    const auto arm = run1_edge0->select(t);
    run1_edge0->feedback(t, arm, arm == 0 ? 5.0 : 0.1);
  }
  // Run 2 starts at edge 0: the coordinator must be fresh, so the first
  // block samples uniformly.
  auto run2_edge0 = factory(make_context(2, 0, 20));
  auto* typed = dynamic_cast<PooledTsallisPolicy*>(run2_edge0.get());
  ASSERT_NE(typed, nullptr);
  typed->select(0);
  EXPECT_NEAR(typed->current_probabilities()[0], 0.5, 1e-9);
  (void)run1_edge1;
}

TEST(PooledTsallis, ConvergesFasterThanIndependentLearning) {
  // On a short horizon with many edges, pooling reaches the best arm far
  // more reliably than independent per-edge learning.
  sim::SimConfig config;
  config.num_edges = 10;
  config.horizon = 60;
  config.workload.num_slots = 60;
  config.workload.mean_samples = 400.0;
  config.carbon_cap = 120.0;
  config.loss_draw_cap = 64;
  config.seed = 31;
  const auto env = sim::Environment::make_parametric(config);

  const sim::AlgorithmCombo pooled{"Pooled", pooled_tsallis_factory(),
                                   sim::ours_combo().trader};
  // Serial averaging only (see pooled_tsallis_factory docs).
  const auto pooled_result = sim::run_combo_averaged(env, pooled, 5, 7);
  const auto independent =
      sim::run_combo_averaged(env, sim::ours_combo(), 5, 7);
  EXPECT_LT(pooled_result.total_inference_cost(),
            independent.total_inference_cost());
  EXPECT_GT(pooled_result.mean_accuracy(), independent.mean_accuracy());
}

}  // namespace
}  // namespace cea::core
