#include "core/predictive_trader.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/price_predictor.h"
#include "util/rng.h"

namespace cea::core {
namespace {

TEST(Ar1Predictor, RecoversDeterministicAr1) {
  Ar1PricePredictor predictor(1.0);
  // p_{t+1} = 0.8 p_t + 1.6 around fixed point 8.
  double p = 5.0;
  for (int i = 0; i < 200; ++i) {
    predictor.observe(p);
    p = 0.8 * p + 1.6;
  }
  EXPECT_NEAR(predictor.slope(), 0.8, 0.05);
  EXPECT_NEAR(predictor.intercept(), 1.6, 0.4);
}

TEST(Ar1Predictor, PredictsNextOfDeterministicSeries) {
  Ar1PricePredictor predictor(1.0);
  double p = 10.0;
  for (int i = 0; i < 100; ++i) {
    predictor.observe(p);
    p = 0.9 * p + 0.8;
  }
  EXPECT_NEAR(predictor.predict_next(), p, 0.05);
}

TEST(Ar1Predictor, FallsBackToLastPriceEarly) {
  Ar1PricePredictor predictor;
  EXPECT_DOUBLE_EQ(predictor.predict_next(), 0.0);
  predictor.observe(7.5);
  EXPECT_DOUBLE_EQ(predictor.predict_next(), 7.5);
}

TEST(Ar1Predictor, BeatsLastPriceOnMeanRevertingWalk) {
  // On a mean-reverting process the AR(1) forecast should have lower
  // squared error than the naive last-price forecast.
  Rng rng(3);
  Ar1PricePredictor predictor(0.995);
  double p = 8.0;
  double ar_error = 0.0, naive_error = 0.0;
  for (int i = 0; i < 3000; ++i) {
    const double ar_forecast = predictor.predict_next();
    const double naive_forecast = p;
    const double next = p + 0.2 * (8.4 - p) + rng.normal(0.0, 0.3);
    if (i > 100) {  // after burn-in
      ar_error += (ar_forecast - next) * (ar_forecast - next);
      naive_error += (naive_forecast - next) * (naive_forecast - next);
    }
    predictor.observe(next);
    p = next;
  }
  EXPECT_LT(ar_error, naive_error);
}

trading::TraderContext make_context() {
  trading::TraderContext context;
  context.horizon = 125;
  context.carbon_cap = 250.0;
  context.max_trade_per_slot = 10.0;
  return context;
}

TEST(PredictiveTrader, RespectsLiquidityBox) {
  PredictiveCarbonTrader trader(make_context(), {});
  Rng rng(5);
  for (std::size_t t = 0; t < 100; ++t) {
    const trading::TradeObservation obs{rng.uniform(5.9, 10.9), 0.0};
    const auto d = trader.decide(t, obs);
    EXPECT_GE(d.buy, 0.0);
    EXPECT_LE(d.buy, 10.0);
    EXPECT_GE(d.sell, 0.0);
    EXPECT_LE(d.sell, 10.0);
    trader.feedback(t, 4.0, {obs.buy_price, 0.9 * obs.buy_price}, d);
  }
  EXPECT_GE(trader.lambda(), 0.0);
}

TEST(PredictiveTrader, DualMatchesBaseAlgorithm) {
  // The dual ascent is identical to Algorithm 2's.
  PredictiveCarbonTrader predictive(make_context(), {});
  OnlineCarbonTrader base(make_context(), {});
  const trading::TradeObservation obs{8.0, 7.2};
  predictive.feedback(0, 5.0, obs, {1.0, 0.0});
  base.feedback(0, 5.0, obs, {1.0, 0.0});
  EXPECT_DOUBLE_EQ(predictive.lambda(), base.lambda());
}

TEST(PredictiveTrader, CoversPersistentDeficitLongRun) {
  trading::TraderContext context;
  context.horizon = 1000;
  context.carbon_cap = 1000.0;
  context.max_trade_per_slot = 10.0;
  PredictiveCarbonTrader trader(context, {});
  const trading::TradeObservation obs{8.0, 7.2};
  double net = 0.0;
  for (std::size_t t = 0; t < context.horizon; ++t) {
    const auto d = trader.decide(t, obs);
    trader.feedback(t, 3.0, obs, d);
    net += d.buy - d.sell;
  }
  const double uncovered = (3.0 - 1.0) * 1000.0;
  EXPECT_NEAR(net / uncovered, 1.0, 0.15);
}

TEST(PredictiveTrader, FactoryWorks) {
  auto trader = PredictiveCarbonTrader::factory()(make_context());
  EXPECT_EQ(trader->name(), "PredictivePD");
  const auto d = trader->decide(0, {8.0, 7.2});
  EXPECT_DOUBLE_EQ(d.buy, 0.0);
}

}  // namespace
}  // namespace cea::core
