#include "core/regret.h"

#include <gtest/gtest.h>

#include <vector>

namespace cea::core {
namespace {

TEST(Fit, ZeroWhenFullyCovered) {
  const std::vector<double> emissions = {2.0, 2.0};
  const std::vector<double> buys = {0.0, 0.0};
  const std::vector<double> sells = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(fit(emissions, buys, sells, 10.0), 0.0);
}

TEST(Fit, PositiveViolationMeasured) {
  const std::vector<double> emissions = {6.0, 6.0};
  const std::vector<double> buys = {1.0, 1.0};
  const std::vector<double> sells = {0.0, 0.0};
  // 12 emitted, cap 5 + bought 2 => violation 5.
  EXPECT_DOUBLE_EQ(fit(emissions, buys, sells, 5.0), 5.0);
}

TEST(Fit, SellingIncreasesViolation) {
  const std::vector<double> emissions = {3.0};
  const std::vector<double> buys = {0.0};
  const std::vector<double> sells = {2.0};
  EXPECT_DOUBLE_EQ(fit(emissions, buys, sells, 3.0), 2.0);
}

TEST(FitSeries, MonotoneAccumulationWithProratedCap) {
  const std::vector<double> emissions = {4.0, 4.0, 4.0, 4.0};
  const std::vector<double> zeros(4, 0.0);
  const auto series = fit_series(emissions, zeros, zeros, 8.0);
  // cap share 2/slot: violation grows by 2 each slot.
  ASSERT_EQ(series.size(), 4u);
  EXPECT_DOUBLE_EQ(series[0], 2.0);
  EXPECT_DOUBLE_EQ(series[3], 8.0);
}

TEST(FitSeries, ClampedAtZero) {
  const std::vector<double> emissions = {1.0, 1.0};
  const std::vector<double> zeros(2, 0.0);
  const auto series = fit_series(emissions, zeros, zeros, 100.0);
  EXPECT_DOUBLE_EQ(series[0], 0.0);
  EXPECT_DOUBLE_EQ(series[1], 0.0);
}

TEST(OneShotOptimum, BuysExactDeficit) {
  // emission 5, share 2 -> buy 3 at price 7.
  EXPECT_DOUBLE_EQ(one_shot_trading_optimum(5.0, 2.0, 7.0, 6.3, 10.0),
                   21.0);
}

TEST(OneShotOptimum, DeficitCappedByLiquidity) {
  EXPECT_DOUBLE_EQ(one_shot_trading_optimum(15.0, 2.0, 7.0, 6.3, 10.0),
                   70.0);
}

TEST(OneShotOptimum, SellsSurplus) {
  // emission 1, share 4 -> sell 3 at 6.3 => revenue 18.9.
  EXPECT_NEAR(one_shot_trading_optimum(1.0, 4.0, 7.0, 6.3, 10.0), -18.9,
              1e-12);
}

TEST(TradingRegretSeries, ZeroForOptimalPlay) {
  const std::vector<double> emissions = {5.0, 5.0};
  const std::vector<double> buys = {3.0, 3.0};  // exactly the deficit
  const std::vector<double> sells = {0.0, 0.0};
  const std::vector<double> buy_prices = {7.0, 7.0};
  const std::vector<double> sell_prices = {6.3, 6.3};
  const auto series = trading_regret_series(
      emissions, buys, sells, buy_prices, sell_prices, 4.0, 10.0);
  EXPECT_NEAR(series.back(), 0.0, 1e-12);
}

TEST(TradingRegretSeries, PositiveForOverbuying) {
  const std::vector<double> emissions = {5.0};
  const std::vector<double> buys = {8.0};  // 5 more than needed
  const std::vector<double> sells = {0.0};
  const std::vector<double> buy_prices = {7.0};
  const std::vector<double> sell_prices = {6.3};
  const auto series = trading_regret_series(
      emissions, buys, sells, buy_prices, sell_prices, 2.0, 10.0);
  EXPECT_NEAR(series[0], 5.0 * 7.0, 1e-12);
}

TEST(TradingRegretSeries, Accumulates) {
  const std::vector<double> emissions = {5.0, 5.0};
  const std::vector<double> buys = {4.0, 4.0};
  const std::vector<double> sells = {0.0, 0.0};
  const std::vector<double> buy_prices = {7.0, 8.0};
  const std::vector<double> sell_prices = {6.3, 7.2};
  const auto series = trading_regret_series(
      emissions, buys, sells, buy_prices, sell_prices, 4.0, 10.0);
  EXPECT_NEAR(series[0], 7.0, 1e-12);          // bought 1 extra at 7
  EXPECT_NEAR(series[1], 7.0 + 8.0, 1e-12);    // plus 1 extra at 8
}

}  // namespace
}  // namespace cea::core
