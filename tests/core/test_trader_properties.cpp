// Parameterized property tests for Algorithm 2 across step-size scales,
// caps, and emission regimes: decisions stay in the liquidity box, the dual
// stays non-negative, and long-run coverage holds whenever the deficit is
// within per-slot liquidity.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/carbon_trader.h"
#include "util/rng.h"

namespace cea::core {
namespace {

struct TraderCase {
  double gamma1_scale;
  double gamma2_scale;
  double cap_share;    // R/T per slot
  double emission;     // constant per-slot emission
  double max_trade;
};

class TraderProperties : public ::testing::TestWithParam<TraderCase> {};

TEST_P(TraderProperties, InvariantsHoldOverNoisyPrices) {
  const auto& param = GetParam();
  trading::TraderContext context;
  context.horizon = 600;
  context.carbon_cap = param.cap_share * 600.0;
  context.max_trade_per_slot = param.max_trade;

  OnlineTraderConfig config;
  config.gamma1_scale = param.gamma1_scale;
  config.gamma2_scale = param.gamma2_scale;
  OnlineCarbonTrader trader(context, config);

  Rng rng(17);
  double net = 0.0;
  double lambda_max = 0.0;
  for (std::size_t t = 0; t < context.horizon; ++t) {
    const double buy = rng.uniform(5.9, 10.9);
    const trading::TradeObservation obs{buy, 0.9 * buy};
    const auto d = trader.decide(t, obs);
    // Box invariant.
    ASSERT_GE(d.buy, 0.0);
    ASSERT_LE(d.buy, param.max_trade + 1e-12);
    ASSERT_GE(d.sell, 0.0);
    ASSERT_LE(d.sell, param.max_trade + 1e-12);
    trader.feedback(t, param.emission, obs, d);
    // Dual invariant.
    ASSERT_GE(trader.lambda(), 0.0);
    lambda_max = std::max(lambda_max, trader.lambda());
    net += d.buy - d.sell;
  }

  // The dual should stay bounded: it is pinned near prices in deficit
  // regimes and near zero in surplus regimes.
  EXPECT_LT(lambda_max, 200.0);

  const double deficit_per_slot = param.emission - param.cap_share;
  if (deficit_per_slot > 0.0 && deficit_per_slot < param.max_trade * 0.8) {
    // Coverage: cumulative net purchase approaches cumulative deficit.
    const double uncovered = deficit_per_slot * 600.0;
    EXPECT_NEAR(net / uncovered, 1.0, 0.3) << "deficit regime";
  }
  if (deficit_per_slot < -0.5) {
    // Surplus: no significant net accumulation of allowances.
    EXPECT_LT(net, 0.25 * 600.0 * std::abs(deficit_per_slot) + 50.0)
        << "surplus regime";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TraderProperties,
    ::testing::Values(
        TraderCase{1.0, 10.0, 2.0, 4.0, 10.0},    // moderate deficit
        TraderCase{2.0, 10.0, 2.0, 4.0, 10.0},    // faster dual
        TraderCase{4.0, 5.0, 2.0, 4.0, 10.0},     // aggressive dual
        TraderCase{2.0, 40.0, 2.0, 4.0, 10.0},    // aggressive primal
        TraderCase{2.0, 10.0, 4.0, 1.0, 10.0},    // surplus regime
        TraderCase{2.0, 10.0, 1.0, 8.0, 10.0},    // heavy deficit
        TraderCase{2.0, 10.0, 2.0, 4.0, 3.0},     // tight liquidity
        TraderCase{0.5, 2.0, 2.0, 4.0, 25.0}),    // slow steps, deep box
    [](const ::testing::TestParamInfo<TraderCase>& info) {
      const auto& c = info.param;
      auto f = [](double v) {
        std::string s = std::to_string(v);
        for (auto& ch : s)
          if (ch == '.' || ch == '-') ch = '_';
        return s.substr(0, 4);
      };
      return "g1_" + f(c.gamma1_scale) + "_g2_" + f(c.gamma2_scale) +
             "_cs_" + f(c.cap_share) + "_e_" + f(c.emission) + "_m_" +
             f(c.max_trade);
    });

}  // namespace
}  // namespace cea::core
