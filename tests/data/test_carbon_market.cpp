#include "data/carbon_market.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace cea::data {
namespace {

TEST(CarbonMarket, PricesWithinBand) {
  MarketConfig config;
  Rng rng(1);
  const PriceSeries series = generate_prices(1000, config, rng);
  ASSERT_EQ(series.size(), 1000u);
  for (double c : series.buy) {
    EXPECT_GE(c, config.min_price);
    EXPECT_LE(c, config.max_price);
  }
}

TEST(CarbonMarket, SellIsNinetyPercentOfBuy) {
  MarketConfig config;
  Rng rng(2);
  const PriceSeries series = generate_prices(200, config, rng);
  for (std::size_t t = 0; t < series.size(); ++t)
    EXPECT_NEAR(series.sell[t], 0.9 * series.buy[t], 1e-12);
}

TEST(CarbonMarket, PricesFluctuate) {
  MarketConfig config;
  Rng rng(3);
  const PriceSeries series = generate_prices(500, config, rng);
  const auto [lo, hi] =
      std::minmax_element(series.buy.begin(), series.buy.end());
  EXPECT_GT(*hi - *lo, 1.0);  // spans a meaningful part of the band
}

TEST(CarbonMarket, MeanNearBandMidpoint) {
  MarketConfig config;
  Rng rng(4);
  const PriceSeries series = generate_prices(20000, config, rng);
  double total = 0.0;
  for (double c : series.buy) total += c;
  const double mean = total / static_cast<double>(series.size());
  EXPECT_NEAR(mean, 0.5 * (config.min_price + config.max_price), 0.7);
}

TEST(CarbonMarket, Deterministic) {
  MarketConfig config;
  Rng a(5), b(5);
  const PriceSeries sa = generate_prices(100, config, a);
  const PriceSeries sb = generate_prices(100, config, b);
  EXPECT_EQ(sa.buy, sb.buy);
}

TEST(CarbonMarket, ConsecutivePricesAreCorrelated) {
  // Mean-reverting walk: per-slot change must be far smaller than the band.
  MarketConfig config;
  Rng rng(6);
  const PriceSeries series = generate_prices(1000, config, rng);
  double max_jump = 0.0;
  for (std::size_t t = 1; t < series.size(); ++t)
    max_jump =
        std::max(max_jump, std::abs(series.buy[t] - series.buy[t - 1]));
  EXPECT_LT(max_jump, 2.5);
}

TEST(CarbonMarket, CustomSellRatio) {
  MarketConfig config;
  config.sell_ratio = 0.5;
  Rng rng(7);
  const PriceSeries series = generate_prices(50, config, rng);
  for (std::size_t t = 0; t < series.size(); ++t)
    EXPECT_NEAR(series.sell[t], 0.5 * series.buy[t], 1e-12);
}

}  // namespace
}  // namespace cea::data
