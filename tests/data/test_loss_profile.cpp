#include "data/loss_profile.h"

#include <gtest/gtest.h>

#include "nn/layers.h"

namespace cea::data {
namespace {

TEST(LossProfile, StatsFromTable) {
  LossProfile profile("m", {0.0, 1.0, 2.0, 1.0}, {1, 0, 0, 1}, 3.5);
  EXPECT_DOUBLE_EQ(profile.mean_loss(), 1.0);
  EXPECT_DOUBLE_EQ(profile.accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(profile.size_mb(), 3.5);
  EXPECT_EQ(profile.table_size(), 4u);
  EXPECT_GT(profile.loss_stddev(), 0.0);
}

TEST(LossProfile, DrawReturnsTableEntries) {
  LossProfile profile("m", {0.25, 0.75}, {1, 0}, 1.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const LossDraw draw = profile.draw(rng);
    EXPECT_TRUE(draw.loss == 0.25 || draw.loss == 0.75);
    // correctness must be consistent with the paired loss entry
    if (draw.loss == 0.25) EXPECT_TRUE(draw.correct);
    if (draw.loss == 0.75) EXPECT_FALSE(draw.correct);
  }
}

TEST(LossProfile, DrawMeanConvergesToTableMean) {
  Rng table_rng(2);
  const LossProfile profile = make_parametric_profile(
      "p", 0.6, 0.2, 0.7, 2.0, 4096, table_rng);
  Rng rng(3);
  double sum = 0.0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) sum += profile.draw(rng).loss;
  EXPECT_NEAR(sum / n, profile.mean_loss(), 0.01);
}

TEST(LossProfile, DrawBatchMatchesSingleDrawStatistics) {
  // draw_batch must sample the same distribution as n draw() calls: with a
  // large n, mean loss and accuracy agree with independent single draws
  // (and with the table statistics) to statistical tolerance.
  Rng table_rng(20);
  const LossProfile profile = make_parametric_profile(
      "p", 0.6, 0.2, 0.7, 2.0, 4096, table_rng);
  const std::size_t n = 200000;

  Rng single_rng(21);
  double single_sum = 0.0;
  std::size_t single_correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const LossDraw draw = profile.draw(single_rng);
    single_sum += draw.loss;
    single_correct += draw.correct ? 1 : 0;
  }

  Rng batch_rng(22);
  const LossBatch batch = profile.draw_batch(batch_rng, n);

  const auto dn = static_cast<double>(n);
  EXPECT_NEAR(batch.loss_sum / dn, single_sum / dn, 0.005);
  EXPECT_NEAR(batch.loss_sum / dn, profile.mean_loss(), 0.005);
  EXPECT_NEAR(static_cast<double>(batch.correct_count) / dn,
              static_cast<double>(single_correct) / dn, 0.01);
  EXPECT_NEAR(static_cast<double>(batch.correct_count) / dn,
              profile.accuracy(), 0.01);
}

TEST(LossProfile, DrawBatchAggregatesTableEntriesOnly) {
  // On a two-entry table every batch aggregate must decompose into counts
  // of the two entries: loss_sum = a*0.25 + b*0.75 with a+b = n and
  // correct_count = a (entry 0 is the only correct one).
  LossProfile profile("m", {0.25, 0.75}, {1, 0}, 1.0);
  Rng rng(23);
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{100},
                        std::size_t{1000}}) {
    const LossBatch batch = profile.draw_batch(rng, n);
    const auto a = batch.correct_count;
    ASSERT_LE(a, n);
    const double expected =
        static_cast<double>(a) * 0.25 + static_cast<double>(n - a) * 0.75;
    EXPECT_NEAR(batch.loss_sum, expected, 1e-9);
  }
}

TEST(LossProfile, DrawBatchZeroSamples) {
  LossProfile profile("m", {0.25, 0.75}, {1, 0}, 1.0);
  Rng rng(24);
  const LossBatch batch = profile.draw_batch(rng, 0);
  EXPECT_DOUBLE_EQ(batch.loss_sum, 0.0);
  EXPECT_EQ(batch.correct_count, 0u);
}

TEST(LossProfile, DrawBatchDeterministicPerSeed) {
  Rng table_rng(25);
  const LossProfile profile = make_parametric_profile(
      "p", 0.5, 0.15, 0.8, 1.0, 1024, table_rng);
  Rng a(26), b(26), c(27);
  const LossBatch ba = profile.draw_batch(a, 500);
  const LossBatch bb = profile.draw_batch(b, 500);
  const LossBatch bc = profile.draw_batch(c, 500);
  EXPECT_DOUBLE_EQ(ba.loss_sum, bb.loss_sum);
  EXPECT_EQ(ba.correct_count, bb.correct_count);
  EXPECT_NE(ba.loss_sum, bc.loss_sum);
}

TEST(ParametricProfile, RespectsTargets) {
  Rng rng(4);
  const LossProfile profile =
      make_parametric_profile("p", 0.5, 0.1, 0.8, 1.5, 8192, rng);
  EXPECT_NEAR(profile.mean_loss(), 0.5, 0.02);
  EXPECT_NEAR(profile.accuracy(), 0.8, 0.03);
  EXPECT_DOUBLE_EQ(profile.size_mb(), 1.5);
}

TEST(ParametricProfile, LossesClampedToValidRange) {
  Rng rng(5);
  const LossProfile profile =
      make_parametric_profile("p", 1.9, 1.0, 0.2, 1.0, 2048, rng);
  Rng draw_rng(6);
  for (int i = 0; i < 500; ++i) {
    const double l = profile.draw(draw_rng).loss;
    EXPECT_GE(l, 0.0);
    EXPECT_LE(l, 2.0);
  }
}

TEST(ProfileModel, MatchesDirectEvaluation) {
  // Profile a deterministic model and verify accuracy/mean loss agree with
  // what the profiling set says.
  Rng rng(7);
  nn::Sequential model("probe");
  model.emplace<nn::Flatten>();
  model.emplace<nn::Dense>(4, 3, rng);

  Dataset ds;
  ds.samples = nn::Tensor({20, 1, 2, 2});
  for (std::size_t i = 0; i < ds.samples.size(); ++i)
    ds.samples[i] = static_cast<float>(rng.normal(0.0, 1.0));
  ds.labels.resize(20);
  for (std::size_t i = 0; i < 20; ++i)
    ds.labels[i] = i % 3;

  const LossProfile profile = profile_model(model, ds, 7);
  EXPECT_EQ(profile.table_size(), 20u);
  EXPECT_GE(profile.mean_loss(), 0.0);
  EXPECT_LE(profile.mean_loss(), 2.0);
  EXPECT_GE(profile.accuracy(), 0.0);
  EXPECT_LE(profile.accuracy(), 1.0);
  EXPECT_EQ(profile.model_name(), "probe");
}

TEST(ProfileModel, BatchSizeInvariance) {
  Rng rng(8);
  nn::Sequential model("probe");
  model.emplace<nn::Flatten>();
  model.emplace<nn::Dense>(4, 2, rng);
  Dataset ds;
  ds.samples = nn::Tensor({13, 1, 2, 2});
  for (std::size_t i = 0; i < ds.samples.size(); ++i)
    ds.samples[i] = static_cast<float>(rng.normal(0.0, 1.0));
  ds.labels.assign(13, 0);
  const LossProfile a = profile_model(model, ds, 4);
  const LossProfile b = profile_model(model, ds, 100);
  EXPECT_NEAR(a.mean_loss(), b.mean_loss(), 1e-9);
  EXPECT_DOUBLE_EQ(a.accuracy(), b.accuracy());
}

}  // namespace
}  // namespace cea::data
