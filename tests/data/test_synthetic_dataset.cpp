#include "data/synthetic_dataset.h"

#include <gtest/gtest.h>

#include <set>

#include "nn/layers.h"
#include "nn/train.h"

namespace cea::data {
namespace {

TEST(SyntheticDataset, ShapesMatchSpec) {
  const SyntheticDistribution dist(mnist_like_spec());
  Rng rng(1);
  const Dataset ds = dist.sample(10, rng);
  EXPECT_EQ(ds.size(), 10u);
  ASSERT_EQ(ds.samples.rank(), 4u);
  EXPECT_EQ(ds.samples.dim(0), 10u);
  EXPECT_EQ(ds.samples.dim(1), 1u);
  EXPECT_EQ(ds.samples.dim(2), 28u);
  EXPECT_EQ(ds.samples.dim(3), 28u);
}

TEST(SyntheticDataset, CifarShapes) {
  const SyntheticDistribution dist(cifar_like_spec());
  Rng rng(2);
  const Dataset ds = dist.sample(4, rng);
  EXPECT_EQ(ds.samples.dim(1), 3u);
  EXPECT_EQ(ds.samples.dim(2), 32u);
}

TEST(SyntheticDataset, LabelsInRange) {
  const SyntheticDistribution dist(mnist_like_spec());
  Rng rng(3);
  const Dataset ds = dist.sample(500, rng);
  for (auto l : ds.labels) EXPECT_LT(l, 10u);
}

TEST(SyntheticDataset, AllClassesAppear) {
  const SyntheticDistribution dist(mnist_like_spec());
  Rng rng(4);
  const Dataset ds = dist.sample(1000, rng);
  std::set<std::size_t> seen(ds.labels.begin(), ds.labels.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(SyntheticDataset, SameSpecSameDistribution) {
  // Two distributions built from the same spec must have identical
  // prototypes: with the same stream RNG, they emit identical samples.
  const SyntheticSpec spec = mnist_like_spec();
  const SyntheticDistribution a(spec), b(spec);
  Rng rng_a(7), rng_b(7);
  const Dataset da = a.sample(3, rng_a);
  const Dataset db = b.sample(3, rng_b);
  for (std::size_t i = 0; i < da.samples.size(); ++i)
    EXPECT_EQ(da.samples[i], db.samples[i]);
  EXPECT_EQ(da.labels, db.labels);
}

TEST(SyntheticDataset, DifferentSeedDifferentDistribution) {
  SyntheticSpec spec = mnist_like_spec();
  const SyntheticDistribution a(spec);
  spec.distribution_seed = 99;
  const SyntheticDistribution b(spec);
  Rng rng_a(7), rng_b(7);
  const Dataset da = a.sample(3, rng_a);
  const Dataset db = b.sample(3, rng_b);
  int equal = 0;
  for (std::size_t i = 0; i < da.samples.size(); ++i)
    equal += (da.samples[i] == db.samples[i]);
  EXPECT_LT(equal, static_cast<int>(da.samples.size() / 2));
}

TEST(SyntheticDataset, SamplesHaveNoise) {
  const SyntheticDistribution dist(mnist_like_spec());
  Rng rng(8);
  const Dataset ds = dist.sample(2, rng);
  // Two samples of (possibly) different classes should differ.
  int diff = 0;
  for (std::size_t i = 0; i < 28 * 28; ++i)
    diff += (ds.samples[i] != ds.samples[28 * 28 + i]);
  EXPECT_GT(diff, 700);
}

TEST(SyntheticDataset, IsLearnable) {
  // A small MLP trained on the synthetic distribution must beat chance
  // clearly — the datasets must carry class signal for the zoo to learn.
  const SyntheticDistribution dist(mnist_like_spec());
  Rng rng(9);
  const Dataset train = dist.sample(1500, rng);
  const Dataset test = dist.sample(400, rng);

  Rng model_rng(10);
  nn::Sequential model("probe");
  model.emplace<nn::Flatten>();
  model.emplace<nn::Dense>(784, 32, model_rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Dense>(32, 10, model_rng);

  nn::TrainConfig config;
  config.epochs = 4;
  config.batch_size = 32;
  config.learning_rate = 0.05f;
  train_sgd(model, train.samples, train.labels, config, model_rng);
  const auto eval = nn::evaluate(model, test.samples, test.labels);
  EXPECT_GT(eval.accuracy, 0.4);  // chance is 0.1
}

TEST(SyntheticDataset, SampleIntoMatchesBatchSampling) {
  const SyntheticDistribution dist(mnist_like_spec());
  Rng rng_a(11), rng_b(11);
  const Dataset batch = dist.sample(2, rng_a);
  nn::Tensor single({2, 1, 28, 28});
  std::size_t label0 = 0, label1 = 0;
  dist.sample_into(single, 0, label0, rng_b);
  dist.sample_into(single, 1, label1, rng_b);
  EXPECT_EQ(label0, batch.labels[0]);
  EXPECT_EQ(label1, batch.labels[1]);
  for (std::size_t i = 0; i < single.size(); ++i)
    EXPECT_EQ(single[i], batch.samples[i]);
}

}  // namespace
}  // namespace cea::data
