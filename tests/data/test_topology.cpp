#include "data/topology.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cea::data {
namespace {

TEST(Topology, Distance) {
  EXPECT_DOUBLE_EQ(distance_km({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance_km({1.0, 1.0}, {1.0, 1.0}), 0.0);
}

TEST(Topology, GeneratesRequestedEdges) {
  TopologyConfig config;
  Rng rng(1);
  const Topology topo = generate_topology(25, config, rng);
  EXPECT_EQ(topo.num_edges(), 25u);
  EXPECT_EQ(topo.distance_km.size(), 25u);
  EXPECT_EQ(topo.download_delay.size(), 25u);
  EXPECT_EQ(topo.transfer_energy_kwh_per_mb.size(), 25u);
}

TEST(Topology, EdgesWithinRegion) {
  TopologyConfig config;
  config.region_radius_km = 500.0;
  Rng rng(2);
  const Topology topo = generate_topology(100, config, rng);
  for (const auto& site : topo.edges) {
    EXPECT_LE(std::hypot(site.x_km, site.y_km), 500.0 + 1e-9);
  }
}

TEST(Topology, DelayIncreasesWithDistance) {
  TopologyConfig config;
  Rng rng(3);
  const Topology topo = generate_topology(50, config, rng);
  for (std::size_t i = 0; i < topo.num_edges(); ++i) {
    const double expected = config.delay_base +
                            config.delay_per_1000km *
                                topo.distance_km[i] / 1000.0;
    EXPECT_NEAR(topo.download_delay[i], expected, 1e-12);
    EXPECT_GT(topo.download_delay[i], config.delay_base);
  }
}

TEST(Topology, CloudIsFarFromEdges) {
  TopologyConfig config;
  Rng rng(4);
  const Topology topo = generate_topology(20, config, rng);
  for (double d : topo.distance_km)
    EXPECT_GT(d, config.cloud_offset_km - config.region_radius_km - 1e-9);
}

TEST(Topology, HeterogeneousDelays) {
  TopologyConfig config;
  Rng rng(5);
  const Topology topo = generate_topology(30, config, rng);
  double lo = topo.download_delay[0], hi = topo.download_delay[0];
  for (double d : topo.download_delay) {
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_GT(hi - lo, 0.01);
}

TEST(Topology, Deterministic) {
  TopologyConfig config;
  Rng a(6), b(6);
  const Topology ta = generate_topology(5, config, a);
  const Topology tb = generate_topology(5, config, b);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(ta.distance_km[i], tb.distance_km[i]);
}

}  // namespace
}  // namespace cea::data
