#include "data/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/rng.h"

namespace cea::data {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "cea_trace_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  void write(const std::string& contents) {
    std::ofstream out(path_);
    out << contents;
  }
  std::string path_;
};

TEST_F(TraceIoTest, LoadsWorkloadRows) {
  write("10,20,30\n40,50,60\n");
  const auto traces = load_workload_csv(path_);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0], (std::vector<int>{10, 20, 30}));
  EXPECT_EQ(traces[1], (std::vector<int>{40, 50, 60}));
}

TEST_F(TraceIoTest, SkipsBlankLinesAndTrimsWhitespace) {
  write("10, 20 ,30\n\n  \n40,50,60\n");
  const auto traces = load_workload_csv(path_);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0][1], 20);
}

TEST_F(TraceIoTest, RejectsRaggedWorkload) {
  write("1,2,3\n4,5\n");
  EXPECT_THROW(load_workload_csv(path_), std::runtime_error);
}

TEST_F(TraceIoTest, RejectsNonPositiveCounts) {
  write("1,0,3\n");
  EXPECT_THROW(load_workload_csv(path_), std::runtime_error);
}

TEST_F(TraceIoTest, RejectsGarbageCell) {
  write("1,abc,3\n");
  EXPECT_THROW(load_workload_csv(path_), std::runtime_error);
}

TEST_F(TraceIoTest, RejectsEmptyWorkloadFile) {
  write("\n\n");
  EXPECT_THROW(load_workload_csv(path_), std::runtime_error);
}

TEST_F(TraceIoTest, LoadsPricesWithHeaderAndTwoColumns) {
  write("buy,sell\n8.0,7.2\n9.5,8.55\n");
  const auto series = load_prices_csv(path_);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series.buy[0], 8.0);
  EXPECT_DOUBLE_EQ(series.sell[1], 8.55);
}

TEST_F(TraceIoTest, DerivesSellFromRatioWhenSingleColumn) {
  write("10.0\n6.0\n");
  const auto series = load_prices_csv(path_, 0.9);
  EXPECT_DOUBLE_EQ(series.sell[0], 9.0);
  EXPECT_DOUBLE_EQ(series.sell[1], 5.4);
}

TEST_F(TraceIoTest, RejectsSellAboveBuy) {
  write("8.0,8.5\n");
  EXPECT_THROW(load_prices_csv(path_), std::runtime_error);
}

TEST_F(TraceIoTest, RejectsNonPositivePrice) {
  write("-2.0\n");
  EXPECT_THROW(load_prices_csv(path_), std::runtime_error);
}

TEST_F(TraceIoTest, RejectsMissingFile) {
  EXPECT_THROW(load_workload_csv("/nonexistent/x.csv"), std::runtime_error);
  EXPECT_THROW(load_prices_csv("/nonexistent/x.csv"), std::runtime_error);
}

TEST_F(TraceIoTest, WorkloadRoundTrip) {
  Rng rng(1);
  WorkloadConfig config;
  config.num_slots = 20;
  const auto original = generate_workload(4, config, rng);
  save_workload_csv(original, path_);
  const auto loaded = load_workload_csv(path_);
  EXPECT_EQ(loaded, original);
}

TEST_F(TraceIoTest, PricesRoundTrip) {
  Rng rng(2);
  const auto original = generate_prices(25, {}, rng);
  save_prices_csv(original, path_);
  const auto loaded = load_prices_csv(path_);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t t = 0; t < loaded.size(); ++t) {
    EXPECT_NEAR(loaded.buy[t], original.buy[t], 1e-9);
    EXPECT_NEAR(loaded.sell[t], original.sell[t], 1e-9);
  }
}

}  // namespace
}  // namespace cea::data
