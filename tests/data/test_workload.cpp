#include "data/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace cea::data {
namespace {

TEST(DiurnalShape, BoundedAndPositive) {
  for (int i = 0; i < 100; ++i) {
    const double u = i / 100.0;
    const double s = diurnal_shape(u);
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.01);
  }
}

TEST(DiurnalShape, HasMorningAndEveningPeaks) {
  const double morning = diurnal_shape(0.35);
  const double midday = diurnal_shape(0.55);
  const double evening = diurnal_shape(0.73);
  const double night = diurnal_shape(0.02);
  EXPECT_GT(morning, midday);
  EXPECT_GT(evening, midday);
  EXPECT_GT(morning, night);
}

TEST(Workload, ShapeAndPositivity) {
  WorkloadConfig config;
  config.num_slots = 160;
  Rng rng(1);
  const auto traces = generate_workload(5, config, rng);
  ASSERT_EQ(traces.size(), 5u);
  for (const auto& trace : traces) {
    ASSERT_EQ(trace.size(), 160u);
    for (int m : trace) EXPECT_GE(m, 1);
  }
}

TEST(Workload, MeanNearConfigured) {
  WorkloadConfig config;
  config.num_slots = 1600;  // long trace for tight statistics
  config.mean_samples = 100.0;
  Rng rng(2);
  const auto traces = generate_workload(20, config, rng);
  double total = 0.0;
  std::size_t count = 0;
  for (const auto& trace : traces) {
    for (int m : trace) {
      total += m;
      ++count;
    }
  }
  const double mean = total / static_cast<double>(count);
  EXPECT_NEAR(mean, 100.0, 25.0);
}

TEST(Workload, StationsSortedBusiestFirst) {
  WorkloadConfig config;
  config.num_slots = 400;
  Rng rng(3);
  const auto traces = generate_workload(10, config, rng);
  auto volume = [](const std::vector<int>& t) {
    long s = 0;
    for (int m : t) s += m;
    return s;
  };
  // Edge 0 is the busiest station by construction.
  const long first = volume(traces[0]);
  for (std::size_t i = 1; i < traces.size(); ++i)
    EXPECT_GE(first, volume(traces[i]) / 2);  // heavy-tailed but ordered
  EXPECT_GE(first, volume(traces[9]));
}

TEST(Workload, PeaksVisibleInAggregate) {
  WorkloadConfig config;
  config.num_slots = 80;  // one day
  config.slots_per_day = 80;
  config.noise = 0.01;
  config.peak_factor = 3.0;
  Rng rng(4);
  const auto traces = generate_workload(30, config, rng);
  std::vector<double> aggregate(80, 0.0);
  for (const auto& trace : traces)
    for (std::size_t t = 0; t < 80; ++t) aggregate[t] += trace[t];
  // Rush-hour slots beat the off-peak trough.
  const double morning = aggregate[static_cast<std::size_t>(0.35 * 80)];
  const double midnight = aggregate[1];
  EXPECT_GT(morning, midnight * 1.3);
}

TEST(Workload, Deterministic) {
  WorkloadConfig config;
  Rng a(5), b(5);
  const auto ta = generate_workload(3, config, a);
  const auto tb = generate_workload(3, config, b);
  EXPECT_EQ(ta, tb);
}

TEST(Workload, TwoDayPeriodicityCorrelates) {
  WorkloadConfig config;
  config.num_slots = 160;
  config.slots_per_day = 80;
  config.noise = 0.05;
  Rng rng(6);
  const auto traces = generate_workload(1, config, rng);
  // Day 1 and day 2 shapes should be positively correlated.
  double corr_num = 0.0, day1_sq = 0.0, day2_sq = 0.0;
  double m1 = 0.0, m2 = 0.0;
  for (std::size_t t = 0; t < 80; ++t) {
    m1 += traces[0][t];
    m2 += traces[0][80 + t];
  }
  m1 /= 80.0;
  m2 /= 80.0;
  for (std::size_t t = 0; t < 80; ++t) {
    const double d1 = traces[0][t] - m1;
    const double d2 = traces[0][80 + t] - m2;
    corr_num += d1 * d2;
    day1_sq += d1 * d1;
    day2_sq += d2 * d2;
  }
  const double corr = corr_num / std::sqrt(day1_sq * day2_sq);
  EXPECT_GT(corr, 0.5);
}

}  // namespace
}  // namespace cea::data
