#include "data/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/thread_pool.h"

namespace cea::data {
namespace {

TEST(DiurnalShape, BoundedAndPositive) {
  for (int i = 0; i < 100; ++i) {
    const double u = i / 100.0;
    const double s = diurnal_shape(u);
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.01);
  }
}

TEST(DiurnalShape, HasMorningAndEveningPeaks) {
  const double morning = diurnal_shape(0.35);
  const double midday = diurnal_shape(0.55);
  const double evening = diurnal_shape(0.73);
  const double night = diurnal_shape(0.02);
  EXPECT_GT(morning, midday);
  EXPECT_GT(evening, midday);
  EXPECT_GT(morning, night);
}

TEST(Workload, ShapeAndPositivity) {
  WorkloadConfig config;
  config.num_slots = 160;
  Rng rng(1);
  const auto traces = generate_workload(5, config, rng);
  ASSERT_EQ(traces.size(), 5u);
  for (const auto& trace : traces) {
    ASSERT_EQ(trace.size(), 160u);
    for (int m : trace) EXPECT_GE(m, 1);
  }
}

TEST(Workload, MeanNearConfigured) {
  WorkloadConfig config;
  config.num_slots = 1600;  // long trace for tight statistics
  config.mean_samples = 100.0;
  Rng rng(2);
  const auto traces = generate_workload(20, config, rng);
  double total = 0.0;
  std::size_t count = 0;
  for (const auto& trace : traces) {
    for (int m : trace) {
      total += m;
      ++count;
    }
  }
  const double mean = total / static_cast<double>(count);
  EXPECT_NEAR(mean, 100.0, 25.0);
}

TEST(Workload, StationsSortedBusiestFirst) {
  WorkloadConfig config;
  config.num_slots = 400;
  Rng rng(3);
  const auto traces = generate_workload(10, config, rng);
  auto volume = [](const std::vector<int>& t) {
    long s = 0;
    for (int m : t) s += m;
    return s;
  };
  // Edge 0 is the busiest station by construction.
  const long first = volume(traces[0]);
  for (std::size_t i = 1; i < traces.size(); ++i)
    EXPECT_GE(first, volume(traces[i]) / 2);  // heavy-tailed but ordered
  EXPECT_GE(first, volume(traces[9]));
}

TEST(Workload, PeaksVisibleInAggregate) {
  WorkloadConfig config;
  config.num_slots = 80;  // one day
  config.slots_per_day = 80;
  config.noise = 0.01;
  config.peak_factor = 3.0;
  Rng rng(4);
  const auto traces = generate_workload(30, config, rng);
  std::vector<double> aggregate(80, 0.0);
  for (const auto& trace : traces)
    for (std::size_t t = 0; t < 80; ++t) aggregate[t] += trace[t];
  // Rush-hour slots beat the off-peak trough.
  const double morning = aggregate[static_cast<std::size_t>(0.35 * 80)];
  const double midnight = aggregate[1];
  EXPECT_GT(morning, midnight * 1.3);
}

TEST(Workload, Deterministic) {
  WorkloadConfig config;
  Rng a(5), b(5);
  const auto ta = generate_workload(3, config, a);
  const auto tb = generate_workload(3, config, b);
  EXPECT_EQ(ta, tb);
}

TEST(Workload, TwoDayPeriodicityCorrelates) {
  WorkloadConfig config;
  config.num_slots = 160;
  config.slots_per_day = 80;
  config.noise = 0.05;
  Rng rng(6);
  const auto traces = generate_workload(1, config, rng);
  // Day 1 and day 2 shapes should be positively correlated.
  double corr_num = 0.0, day1_sq = 0.0, day2_sq = 0.0;
  double m1 = 0.0, m2 = 0.0;
  for (std::size_t t = 0; t < 80; ++t) {
    m1 += traces[0][t];
    m2 += traces[0][80 + t];
  }
  m1 /= 80.0;
  m2 /= 80.0;
  for (std::size_t t = 0; t < 80; ++t) {
    const double d1 = traces[0][t] - m1;
    const double d2 = traces[0][80 + t] - m2;
    corr_num += d1 * d2;
    day1_sq += d1 * d1;
    day2_sq += d2 * d2;
  }
  const double corr = corr_num / std::sqrt(day1_sq * day2_sq);
  EXPECT_GT(corr, 0.5);
}

// --- Keyed generators (kHeavyTail / kFlashCrowd) ------------------------

WorkloadConfig keyed_config(WorkloadKind kind) {
  WorkloadConfig config;
  config.num_slots = 160;
  config.kind = kind;
  return config;
}

TEST(KeyedWorkload, DeterministicUnderFixedSeed) {
  for (auto kind : {WorkloadKind::kHeavyTail, WorkloadKind::kFlashCrowd}) {
    const auto config = keyed_config(kind);
    Rng a(12), b(12);
    EXPECT_EQ(generate_workload(40, config, a),
              generate_workload(40, config, b));
  }
}

TEST(KeyedWorkload, PooledBitIdenticalToSerial) {
  util::ThreadPool pool(3);
  for (auto kind : {WorkloadKind::kHeavyTail, WorkloadKind::kFlashCrowd}) {
    const auto config = keyed_config(kind);
    Rng serial_rng(7), pooled_rng(7);
    const auto serial = generate_workload(200, config, serial_rng);
    const auto pooled =
        generate_workload_pooled(200, config, pooled_rng, &pool);
    EXPECT_EQ(serial, pooled);
    // Both paths consumed the same single base-seed draw.
    EXPECT_EQ(serial_rng(), pooled_rng());
  }
}

TEST(KeyedWorkload, ConsumesExactlyOneDraw) {
  // The keyed kinds derive one base seed from the caller's stream and are
  // otherwise pure in (seed, edge, t) — the property pooled generation
  // relies on.
  const auto config = keyed_config(WorkloadKind::kHeavyTail);
  Rng used(9), witness(9);
  generate_workload(10, config, used);
  (void)witness();
  EXPECT_EQ(used(), witness());
}

TEST(KeyedWorkload, CellIsPureFunctionOfKey) {
  const auto config = keyed_config(WorkloadKind::kFlashCrowd);
  const double norm = 1.0;
  EXPECT_EQ(workload_cell(config, 77, norm, 3, 41),
            workload_cell(config, 77, norm, 3, 41));
  // Neighbouring keys decorrelate: not all cells equal.
  bool any_differs = false;
  const int first = workload_cell(config, 77, norm, 0, 0);
  for (std::size_t t = 1; t < 32; ++t)
    any_differs |= workload_cell(config, 77, norm, 0, t) != first;
  EXPECT_TRUE(any_differs);
}

TEST(KeyedWorkload, HeavyTailMeanNearConfigured) {
  // The bounded-Pareto burst is normalized by its analytic mean and the
  // Zipf scales average to 1, so the fleet-wide empirical mean must land
  // on mean_samples.
  auto config = keyed_config(WorkloadKind::kHeavyTail);
  config.num_slots = 400;
  config.mean_samples = 200.0;
  Rng rng(21);
  const auto traces = generate_workload(50, config, rng);
  double total = 0.0;
  std::size_t count = 0;
  for (const auto& trace : traces)
    for (int m : trace) {
      total += m;
      ++count;
    }
  const double mean = total / static_cast<double>(count);
  EXPECT_NEAR(mean, 200.0, 40.0);
}

TEST(KeyedWorkload, ZipfScalesAverageToOneAndDecay) {
  const std::size_t edges = 64;
  double total = 0.0;
  for (std::size_t e = 0; e < edges; ++e) {
    const double s = zipf_scale(e, edges, 1.1);
    total += s;
    if (e > 0) EXPECT_LT(s, zipf_scale(e - 1, edges, 1.1));
  }
  EXPECT_NEAR(total / static_cast<double>(edges), 1.0, 1e-9);
}

TEST(KeyedWorkload, FlashCrowdAddsBurstsOverHeavyTailBase) {
  // With a certain ignition every slot, the flash kind must dwarf the pure
  // heavy-tail kind generated from the same seed; with zero ignition
  // probability they coincide exactly.
  auto flash = keyed_config(WorkloadKind::kFlashCrowd);
  flash.num_slots = 80;
  auto base = flash;
  base.kind = WorkloadKind::kHeavyTail;

  auto never = flash;
  never.flash_probability = 0.0;
  Rng a(5), b(5);
  EXPECT_EQ(generate_workload(10, never, a), generate_workload(10, base, b));

  auto always = flash;
  always.flash_probability = 1.0;
  Rng c(5), d(5);
  const auto crowded = generate_workload(10, always, c);
  const auto calm = generate_workload(10, base, d);
  double crowded_total = 0.0, calm_total = 0.0;
  for (std::size_t e = 0; e < 10; ++e)
    for (std::size_t t = 0; t < 80; ++t) {
      crowded_total += crowded[e][t];
      calm_total += calm[e][t];
    }
  // Every slot carries at least the full flash_magnitude multiplier.
  EXPECT_GT(crowded_total, calm_total * 10.0);
}

// --- Tail-index sanity of the bounded-Pareto sampler --------------------

TEST(BoundedPareto, QuantileMatchesAnalyticMean) {
  // Average of the quantile over a fine uniform grid approximates the
  // analytic mean (midpoint rule on the inverse-CDF integral).
  for (double alpha : {1.2, 1.5, 2.5}) {
    const double lo = 1.0, hi = 64.0;
    const std::size_t grid = 200000;
    double sum = 0.0;
    for (std::size_t i = 0; i < grid; ++i) {
      const double u = (static_cast<double>(i) + 0.5) /
                       static_cast<double>(grid);
      sum += bounded_pareto_quantile(u, alpha, lo, hi);
    }
    EXPECT_NEAR(sum / static_cast<double>(grid),
                bounded_pareto_mean(alpha, lo, hi), 0.02)
        << "alpha " << alpha;
  }
}

TEST(BoundedPareto, HillEstimatorRecoversTailIndex) {
  // Hill estimator over the largest order statistics of quantile samples
  // recovers alpha. The cap is pushed far out so truncation does not bias
  // the estimate in the sampled region.
  for (double alpha : {1.3, 2.0}) {
    const double lo = 1.0, hi = 1e9;
    const std::size_t n = 50000;
    std::vector<double> samples(n);
    Rng rng(31);
    for (auto& s : samples)
      s = bounded_pareto_quantile(rng.uniform(), alpha, lo, hi);
    std::sort(samples.begin(), samples.end(), std::greater<>());
    const std::size_t k = 2000;  // tail fraction
    double hill = 0.0;
    for (std::size_t i = 0; i < k; ++i)
      hill += std::log(samples[i] / samples[k]);
    hill /= static_cast<double>(k);
    EXPECT_NEAR(1.0 / hill, alpha, 0.15 * alpha) << "alpha " << alpha;
  }
}

TEST(BoundedPareto, QuantileBoundedAndMonotone) {
  const double lo = 1.0, hi = 64.0, alpha = 1.5;
  double prev = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double u = i / 100.0;
    const double x = bounded_pareto_quantile(u, alpha, lo, hi);
    EXPECT_GE(x, lo);
    EXPECT_LE(x, hi);
    EXPECT_GE(x, prev);
    prev = x;
  }
}

TEST(KeyedWorkload, DiurnalDefaultUnchangedByNewFields) {
  // WorkloadConfig gained keyed-kind fields; the default (kDiurnal) path
  // must keep consuming the same stream — golden traces pin this
  // transitively, this is the direct check.
  WorkloadConfig legacy;
  WorkloadConfig with_fields;
  with_fields.pareto_alpha = 9.9;  // keyed-kind fields are inert under kDiurnal
  with_fields.flash_probability = 1.0;
  Rng a(13), b(13);
  EXPECT_EQ(generate_workload(4, legacy, a),
            generate_workload(4, with_fields, b));
}

}  // namespace
}  // namespace cea::data
