#pragma once

// Shared fixture of the golden-trace regression harness: one small,
// fixed-seed "Ours" scenario whose full RunResult is serialized bit-exactly
// (hex-float cells via CsvWriter::write_row_exact) and checked into
// tests/integration/golden/. The test compares fresh runs against the
// checked-in traces field by field; the golden_trace_regen tool rewrites
// them after an intentional semantics change.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/environment.h"
#include "sim/experiment.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "util/csv.h"
#include "util/numio.h"

namespace cea::sim::golden {

/// Small but non-degenerate: several edges and enough slots for blocks,
/// trades, and at least one model switch to occur.
inline SimConfig golden_config() {
  SimConfig config;
  config.num_edges = 3;
  config.horizon = 32;
  config.workload.num_slots = 32;
  config.workload.mean_samples = 400.0;
  config.carbon_cap = 40.0;
  config.loss_draw_cap = 64;
  config.seed = 17;
  return config;
}

inline constexpr std::uint64_t kGoldenRunSeed = 7;

/// A trace is an ordered list of labeled double rows — the flattened
/// RunResult in a fixed row order shared by serializer and comparator.
using Trace = std::vector<std::pair<std::string, std::vector<double>>>;

inline Trace trace_of(const RunResult& result) {
  Trace trace;
  trace.emplace_back("inference_cost", result.inference_cost);
  trace.emplace_back("switching_cost", result.switching_cost);
  trace.emplace_back("trading_cost", result.trading_cost);
  trace.emplace_back("emissions", result.emissions);
  trace.emplace_back("buys", result.buys);
  trace.emplace_back("sells", result.sells);
  trace.emplace_back("accuracy", result.accuracy);
  trace.emplace_back("workload", result.workload);
  for (std::size_t i = 0; i < result.selection_counts.size(); ++i) {
    std::vector<double> counts;
    counts.reserve(result.selection_counts[i].size());
    for (std::size_t c : result.selection_counts[i])
      counts.push_back(static_cast<double>(c));
    trace.emplace_back("selection_counts_" + std::to_string(i),
                       std::move(counts));
  }
  trace.emplace_back(
      "scalars",
      std::vector<double>{static_cast<double>(result.total_switches),
                          result.carbon_cap, result.settlement_price});
  return trace;
}

inline void write_trace(const Trace& trace, const std::string& path) {
  CsvWriter writer(path);
  for (const auto& [label, values] : trace)
    writer.write_row_exact(label, values);
}

inline Trace read_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("golden trace missing: " + path +
                             " (regenerate with golden_trace_regen)");
  }
  Trace trace;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream cells(line);
    std::string cell;
    if (!std::getline(cells, cell, ',')) continue;
    std::vector<double> values;
    std::string label = cell;
    while (std::getline(cells, cell, ',')) {
      // util::parse_double, not strtod: the golden hex-floats must parse
      // bit-exactly regardless of the host locale's decimal separator.
      double value = 0.0;
      if (!cea::util::parse_double(cell, value)) {
        throw std::runtime_error("golden trace " + path + ": bad cell '" +
                                 cell + "'");
      }
      values.push_back(value);
    }
    trace.emplace_back(std::move(label), std::move(values));
  }
  return trace;
}

/// Bit-level equality: distinguishes -0.0 from 0.0 and compares NaNs by
/// payload instead of always failing.
inline bool same_bits(double a, double b) noexcept {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Field-level comparison. Empty result means bit-identical; otherwise each
/// entry names the row, the column, and both values.
inline std::vector<std::string> diff_traces(const Trace& expected,
                                            const Trace& actual) {
  std::vector<std::string> diffs;
  if (expected.size() != actual.size()) {
    diffs.push_back("row count: expected " + std::to_string(expected.size()) +
                    ", actual " + std::to_string(actual.size()));
  }
  const std::size_t rows = std::min(expected.size(), actual.size());
  for (std::size_t r = 0; r < rows; ++r) {
    const auto& [exp_label, exp_values] = expected[r];
    const auto& [act_label, act_values] = actual[r];
    if (exp_label != act_label) {
      diffs.push_back("row " + std::to_string(r) + " label: expected '" +
                      exp_label + "', actual '" + act_label + "'");
      continue;
    }
    if (exp_values.size() != act_values.size()) {
      diffs.push_back(exp_label + ": length expected " +
                      std::to_string(exp_values.size()) + ", actual " +
                      std::to_string(act_values.size()));
      continue;
    }
    for (std::size_t c = 0; c < exp_values.size(); ++c) {
      if (!same_bits(exp_values[c], act_values[c])) {
        char buffer[160];
        std::snprintf(buffer, sizeof(buffer),
                      "%s[%zu]: expected %a (%.17g), actual %a (%.17g)",
                      exp_label.c_str(), c, exp_values[c], exp_values[c],
                      act_values[c], act_values[c]);
        diffs.emplace_back(buffer);
      }
    }
  }
  return diffs;
}

inline std::string join_diffs(const std::vector<std::string>& diffs) {
  std::string out;
  for (const auto& d : diffs) {
    out += d;
    out += '\n';
  }
  return out;
}

/// Run the golden scenario with the given engine options. The "Ours" combo
/// exercises Algorithms 1 and 2, the block accounting, and the trading
/// ledger in one trace.
inline RunResult run_golden(SimOptions options = {}) {
  const auto env = Environment::make_parametric(golden_config());
  Simulator simulator(env, options);
  const auto combo = ours_combo();
  return simulator.run(combo.policy, combo.trader, kGoldenRunSeed,
                       combo.name);
}

/// Directory holding the checked-in traces (compile definition set in
/// tests/CMakeLists.txt).
inline std::string golden_dir() { return CEA_GOLDEN_TRACE_DIR; }

inline std::string batched_golden_path() {
  return golden_dir() + "/ours_batched.csv";
}

/// The per-sample reference engine consumes a different (shared) RNG
/// stream, so it has its own golden.
inline std::string per_sample_golden_path() {
  return golden_dir() + "/ours_per_sample.csv";
}

/// The Offline baseline (best fixed model + offline trading LP) pins the
/// simplex solver bit-exactly: any pivot-order or arithmetic change in
/// opt/simplex shows up as a field-level diff in the buys/sells rows.
inline std::string offline_golden_path() {
  return golden_dir() + "/offline_lp.csv";
}

/// Run the golden scenario's Offline combo (run_offline drives
/// solve_offline_trading and OfflineLpTrader over the realized emissions).
inline RunResult run_golden_offline() {
  const auto env = Environment::make_parametric(golden_config());
  return run_offline(env, kGoldenRunSeed);
}

}  // namespace cea::sim::golden
