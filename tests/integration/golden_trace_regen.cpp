// Regenerates the checked-in golden traces under tests/integration/golden/.
// Run after an *intentional* change to simulation semantics, then review
// the trace diff like any other source change:
//   ./build/tests/golden_trace_regen
#include <cstdio>

#include "golden_trace.h"

int main() {
  using namespace cea::sim;

  const auto batched = golden::trace_of(golden::run_golden());
  golden::write_trace(batched, golden::batched_golden_path());
  std::printf("wrote %s\n", golden::batched_golden_path().c_str());

  SimOptions per_sample;
  per_sample.per_sample_draws = true;
  const auto reference = golden::trace_of(golden::run_golden(per_sample));
  golden::write_trace(reference, golden::per_sample_golden_path());
  std::printf("wrote %s\n", golden::per_sample_golden_path().c_str());

  const auto offline = golden::trace_of(golden::run_golden_offline());
  golden::write_trace(offline, golden::offline_golden_path());
  std::printf("wrote %s\n", golden::offline_golden_path().c_str());

  // Sanity: the pool-parallel engine must agree with the batched-serial
  // trace just written (they share a golden).
  cea::util::ThreadPool pool(3);
  SimOptions parallel;
  parallel.pool = &pool;
  const auto diffs =
      golden::diff_traces(batched, golden::trace_of(golden::run_golden(parallel)));
  if (!diffs.empty()) {
    std::fprintf(stderr, "parallel engine diverged from serial:\n%s",
                 golden::join_diffs(diffs).c_str());
    return 1;
  }
  return 0;
}
