// Golden-trace regression tests: a fixed-seed "Ours" run must reproduce
// the checked-in trace bit for bit in every engine mode, and any 1-ULP
// deviation must surface as a field-level diff. Regenerate the traces with
// the golden_trace_regen tool after an intentional semantics change.
#include "golden_trace.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/audit.h"
#include "util/thread_pool.h"

namespace cea::sim::golden {
namespace {

TEST(GoldenTrace, BatchedSerialMatchesGolden) {
  const auto expected = read_trace(batched_golden_path());
  const auto actual = trace_of(run_golden());
  const auto diffs = diff_traces(expected, actual);
  EXPECT_TRUE(diffs.empty()) << join_diffs(diffs);
}

TEST(GoldenTrace, PoolParallelMatchesGolden) {
  const auto expected = read_trace(batched_golden_path());
  for (std::size_t threads : {2u, 5u}) {
    util::ThreadPool pool(threads);
    SimOptions options;
    options.pool = &pool;
    const auto diffs = diff_traces(expected, trace_of(run_golden(options)));
    EXPECT_TRUE(diffs.empty())
        << "threads=" << threads << '\n'
        << join_diffs(diffs);
  }
}

TEST(GoldenTrace, PerSampleReferenceMatchesItsGolden) {
  const auto expected = read_trace(per_sample_golden_path());
  SimOptions options;
  options.per_sample_draws = true;
  const auto diffs = diff_traces(expected, trace_of(run_golden(options)));
  EXPECT_TRUE(diffs.empty()) << join_diffs(diffs);
}

TEST(GoldenTrace, CrossEdgeBatchSolveDisabledMatchesSameGolden) {
  // The cross-edge batched OMD solver is bit-identical to the per-edge
  // scalar path, so BOTH engine modes must reproduce the one golden.
  const auto expected = read_trace(batched_golden_path());
  SimOptions options;
  options.cross_edge_batch_solve = false;
  const auto diffs = diff_traces(expected, trace_of(run_golden(options)));
  EXPECT_TRUE(diffs.empty()) << join_diffs(diffs);
}

TEST(GoldenTrace, OfflineLpMatchesItsGolden) {
  const auto expected = read_trace(offline_golden_path());
  const auto diffs = diff_traces(expected, trace_of(run_golden_offline()));
  EXPECT_TRUE(diffs.empty()) << join_diffs(diffs);
}

TEST(GoldenTrace, OneUlpPerturbationYieldsFieldLevelDiff) {
  const auto expected = read_trace(batched_golden_path());
  auto perturbed = expected;
  // Find a nonzero emission cell and move it one ULP.
  for (auto& [label, values] : perturbed) {
    if (label != "emissions") continue;
    ASSERT_FALSE(values.empty());
    ASSERT_NE(values[5], 0.0);
    values[5] = std::nextafter(values[5], 2.0 * values[5]);
    break;
  }
  const auto diffs = diff_traces(expected, perturbed);
  ASSERT_EQ(diffs.size(), 1u);
  // The diff must name the row and the field index.
  EXPECT_NE(diffs[0].find("emissions[5]"), std::string::npos) << diffs[0];
}

TEST(GoldenTrace, GoldenRunPassesAudit) {
  audit::clear();
  const auto env = Environment::make_parametric(golden_config());
  Simulator simulator(env);
  const auto combo = ours_combo();
  const auto result =
      simulator.run(combo.policy, combo.trader, kGoldenRunSeed, combo.name);
  const auto violations = audit_run(env, result);
  EXPECT_TRUE(violations.empty()) << format_violations(violations);
  // In a -DCEA_AUDIT=ON build the hot-path checks must also be clean.
  audit::clear();
}

TEST(GoldenTrace, TraceSerializationRoundTrips) {
  const auto trace = trace_of(run_golden());
  const std::string path = ::testing::TempDir() + "cea_golden_roundtrip.csv";
  write_trace(trace, path);
  const auto loaded = read_trace(path);
  const auto diffs = diff_traces(trace, loaded);
  EXPECT_TRUE(diffs.empty()) << join_diffs(diffs);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cea::sim::golden
