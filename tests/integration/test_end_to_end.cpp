// End-to-end integration: the NN substrate feeds real profiled models into
// the simulator; the full paper pipeline (train -> profile -> simulate ->
// compare) runs and produces the qualitative orderings the paper reports.
#include <gtest/gtest.h>

#include "data/loss_profile.h"
#include "data/synthetic_dataset.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "sim/experiment.h"

namespace cea {
namespace {

/// Train a tiny 2-model zoo on the synthetic MNIST-like distribution and
/// profile it (full 6-model training is exercised by the fig12/13 benches;
/// the integration test keeps it small).
std::vector<data::LossProfile> build_profiles() {
  const data::SyntheticDistribution dist(data::mnist_like_spec());
  Rng rng(33);
  const data::Dataset train = dist.sample(800, rng);
  const data::Dataset test = dist.sample(300, rng);

  Rng model_rng(34);
  std::vector<nn::Sequential> zoo;
  zoo.push_back(nn::make_mlp("mlp-64", nn::mnist_spec(), 64, model_rng));
  zoo.push_back(nn::make_mlp("mlp-8", nn::mnist_spec(), 8, model_rng));

  nn::TrainConfig strong;
  strong.epochs = 3;
  strong.batch_size = 32;
  strong.learning_rate = 0.05f;
  nn::TrainConfig weak = strong;
  weak.epochs = 1;
  weak.learning_rate = 0.01f;

  nn::train_sgd(zoo[0], train.samples, train.labels, strong, model_rng);
  nn::train_sgd(zoo[1], train.samples, train.labels, weak, model_rng);

  std::vector<data::LossProfile> profiles;
  profiles.push_back(data::profile_model(zoo[0], test));
  profiles.push_back(data::profile_model(zoo[1], test));
  return profiles;
}

TEST(EndToEnd, NnBackedSimulationPipeline) {
  auto profiles = build_profiles();
  ASSERT_EQ(profiles.size(), 2u);
  // The well-trained model must dominate the under-trained one.
  EXPECT_LT(profiles[0].mean_loss(), profiles[1].mean_loss());
  EXPECT_GT(profiles[0].accuracy(), profiles[1].accuracy());

  sim::SimConfig config;
  config.num_edges = 3;
  config.horizon = 60;
  config.workload.num_slots = 60;
  config.workload.mean_samples = 300.0;
  config.carbon_cap = 20.0;
  config.loss_draw_cap = 64;
  config.seed = 35;
  const auto env =
      sim::Environment::from_profiles(config, std::move(profiles));
  EXPECT_EQ(env.num_models(), 2u);

  const auto ours = sim::run_combo(env, sim::ours_combo(), 5);
  // Our bandit should mostly host the better model late in the horizon.
  std::size_t good = 0, bad = 0;
  for (std::size_t i = 0; i < env.num_edges(); ++i) {
    good += ours.selection_counts[i][0];
    bad += ours.selection_counts[i][1];
  }
  EXPECT_GT(good, bad);

  // And accuracy should reflect the chosen models' quality.
  EXPECT_GT(ours.mean_accuracy(), 0.3);
}

TEST(EndToEnd, FullComboMatrixRunsOnParametricEnvironment) {
  sim::SimConfig config;
  config.num_edges = 2;
  config.horizon = 40;
  config.workload.num_slots = 40;
  config.workload.mean_samples = 200.0;
  config.loss_draw_cap = 32;
  config.seed = 36;
  const auto env = sim::Environment::make_parametric(config);
  for (const auto& combo : sim::all_combos()) {
    const auto result = sim::run_combo(env, combo, 3);
    EXPECT_EQ(result.horizon(), 40u) << combo.name;
    EXPECT_GT(result.total_inference_cost(), 0.0) << combo.name;
  }
  const auto offline = sim::run_offline(env, 3);
  EXPECT_EQ(offline.horizon(), 40u);
}

}  // namespace
}  // namespace cea
