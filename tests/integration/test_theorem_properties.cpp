// Property-style checks of the paper's theoretical guarantees on simulated
// instances: sub-linear regret growth (Theorems 1 and 3) and vanishing
// time-averaged fit (Theorem 2).
#include <gtest/gtest.h>

#include <cmath>

#include "core/regret.h"
#include "sim/experiment.h"

namespace cea {
namespace {

sim::SimConfig config_for_horizon(std::size_t horizon) {
  sim::SimConfig config;
  config.num_edges = 3;
  config.horizon = horizon;
  config.workload.num_slots = horizon;
  // ~1 allowance unit of emission per slot (3 edges x 8000 samples x
  // ~8e-8 kWh x 500 units/kWh), against a prorated cap of 0.5/slot, so the
  // trading subproblem is under constant per-slot tension at every horizon.
  config.workload.mean_samples = 8000.0;
  config.carbon_cap = 0.5 * static_cast<double>(horizon);
  config.loss_draw_cap = 64;
  config.seed = 77;
  return config;
}

double total_cost_gap(std::size_t horizon, std::uint64_t seed) {
  const auto env = sim::Environment::make_parametric(config_for_horizon(horizon));
  const auto ours = sim::run_combo(env, sim::ours_combo(), seed);
  // Regret is measured against the theorem comparator (best fixed models +
  // per-slot optimal trading), not the arbitrage-capable Offline LP — see
  // comparator_cost() in sim/experiment.h.
  return sim::p0_regret(env, ours, seed);
}

TEST(TheoremProperties, WholeProblemRegretSubLinear) {
  // Theorem 3: regret = O(T^{2/3}) + constants. Quadrupling T must grow
  // the regret by clearly less than 4x (allow noise headroom).
  const double short_gap = total_cost_gap(120, 3);
  const double long_gap = total_cost_gap(480, 3);
  EXPECT_LT(long_gap, 3.3 * std::max(short_gap, 1.0) + 30.0);
}

TEST(TheoremProperties, TimeAveragedFitVanishes) {
  // Theorem 2: Fit = O(T^{2/3}), so fit/T -> 0.
  auto fit_per_slot = [](std::size_t horizon) {
    const auto env =
        sim::Environment::make_parametric(config_for_horizon(horizon));
    const auto ours = sim::run_combo(env, sim::ours_combo(), 5);
    return core::fit(ours.emissions, ours.buys, ours.sells,
                     env.config().carbon_cap) /
           static_cast<double>(horizon);
  };
  const double short_fit = fit_per_slot(80);
  const double long_fit = fit_per_slot(480);
  EXPECT_LE(long_fit, short_fit + 0.1);
  EXPECT_LT(long_fit, 1.0);  // per-slot violation is a small fraction of
                             // the per-slot emission (~4 units)
}

TEST(TheoremProperties, SwitchingCostSubLinear) {
  // Theorem 1 bounds switches by K_i = O(T^{2/3}).
  auto switches = [](std::size_t horizon) {
    const auto env =
        sim::Environment::make_parametric(config_for_horizon(horizon));
    const auto ours = sim::run_combo(env, sim::ours_combo(), 7);
    return static_cast<double>(ours.total_switches);
  };
  const double s1 = switches(100);
  const double s2 = switches(800);  // 8x horizon
  EXPECT_LT(s2, 4.5 * s1);          // 8^{2/3} = 4
}

TEST(TheoremProperties, TradingRegretSubLinear) {
  // Theorem 2 regret against the per-slot optima.
  auto trading_regret = [](std::size_t horizon) {
    const auto env =
        sim::Environment::make_parametric(config_for_horizon(horizon));
    const auto ours = sim::run_combo(env, sim::ours_combo(), 9);
    const auto series = core::trading_regret_series(
        ours.emissions, ours.buys, ours.sells, env.prices().buy,
        env.prices().sell, env.config().carbon_cap,
        env.config().max_trade_per_slot);
    return series.back();
  };
  const double r1 = trading_regret(100);
  const double r2 = trading_regret(400);
  // 4x horizon: sub-linear means < 4x regret (with additive headroom).
  EXPECT_LT(r2, 3.5 * std::max(r1, 1.0) + 100.0);
}

TEST(TheoremProperties, OursWithinBaselineEnvelope) {
  // Sanity on the headline claim (Fig. 4): our total cost is below the
  // average of the baseline combos.
  const auto env = sim::Environment::make_parametric(config_for_horizon(160));
  const auto ours = sim::run_combo_averaged(env, sim::ours_combo(), 3, 50);
  double baseline_total = 0.0;
  const auto combos = sim::baseline_combos();
  for (const auto& combo : combos) {
    baseline_total += sim::run_combo(env, combo, 51).total_cost();
  }
  EXPECT_LT(ours.total_cost(),
            baseline_total / static_cast<double>(combos.size()));
}

}  // namespace
}  // namespace cea
