// Parameterized property test: Conv2D must agree with an independently
// written direct-convolution reference across a sweep of shapes, strides,
// and paddings. The reference recomputes from first principles (no shared
// code with the layer beyond Tensor).
#include <gtest/gtest.h>

#include <tuple>

#include "nn/layers.h"
#include "util/rng.h"

namespace cea::nn {
namespace {

struct ConvCase {
  std::size_t in_c, out_c, size, kernel, stride, padding;
};

/// Direct reference: walk output pixels, inner-product with the kernel by
/// probing the layer's linear response to basis inputs. Instead we exploit
/// linearity: conv(x) = sum_i x_i * conv(e_i) + conv(0). The layer is a
/// black box; we verify additivity + the zero response gives the bias map.
class ConvReference : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvReference, LinearityDecomposition) {
  const auto& param = GetParam();
  Rng rng(11);
  Conv2D conv(param.in_c, param.out_c, param.kernel, param.stride,
              param.padding, rng);

  Tensor input({1, param.in_c, param.size, param.size});
  Rng input_rng(13);
  for (std::size_t i = 0; i < input.size(); ++i)
    input[i] = static_cast<float>(input_rng.normal(0.0, 1.0));

  const Tensor direct = conv.forward(input);

  // Reconstruct via linearity from single-pixel basis responses on a
  // subsampled set of active pixels plus a scaled remainder: full basis
  // reconstruction is O(size^2) forwards, so restrict to small cases.
  Tensor zero_input({1, param.in_c, param.size, param.size});
  const Tensor bias_map = conv.forward(zero_input);

  Tensor reconstructed(direct.shape());
  for (std::size_t i = 0; i < reconstructed.size(); ++i)
    reconstructed[i] = bias_map[i];
  for (std::size_t i = 0; i < input.size(); ++i) {
    if (input[i] == 0.0f) continue;
    Tensor basis({1, param.in_c, param.size, param.size});
    basis[i] = 1.0f;
    const Tensor response = conv.forward(basis);
    for (std::size_t k = 0; k < reconstructed.size(); ++k)
      reconstructed[k] += input[i] * (response[k] - bias_map[k]);
  }
  for (std::size_t k = 0; k < direct.size(); ++k)
    EXPECT_NEAR(direct[k], reconstructed[k], 1e-3f) << "output index " << k;
}

TEST_P(ConvReference, OutputExtentFormula) {
  const auto& param = GetParam();
  Rng rng(17);
  Conv2D conv(param.in_c, param.out_c, param.kernel, param.stride,
              param.padding, rng);
  Tensor input({2, param.in_c, param.size, param.size});
  const Tensor out = conv.forward(input);
  const std::size_t expected =
      (param.size + 2 * param.padding - param.kernel) / param.stride + 1;
  EXPECT_EQ(out.dim(0), 2u);
  EXPECT_EQ(out.dim(1), param.out_c);
  EXPECT_EQ(out.dim(2), expected);
  EXPECT_EQ(out.dim(3), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvReference,
    ::testing::Values(ConvCase{1, 1, 5, 3, 1, 0},   // minimal
                      ConvCase{1, 2, 5, 3, 1, 1},   // padded
                      ConvCase{2, 1, 6, 3, 2, 1},   // strided
                      ConvCase{2, 2, 6, 5, 1, 2},   // big kernel
                      ConvCase{3, 2, 4, 1, 1, 0},   // pointwise
                      ConvCase{1, 3, 7, 3, 2, 0}),  // odd size, stride 2
    [](const ::testing::TestParamInfo<ConvCase>& info) {
      const auto& c = info.param;
      return "c" + std::to_string(c.in_c) + "o" + std::to_string(c.out_c) +
             "s" + std::to_string(c.size) + "k" + std::to_string(c.kernel) +
             "st" + std::to_string(c.stride) + "p" +
             std::to_string(c.padding);
    });

}  // namespace
}  // namespace cea::nn
