// Parameterized linearity-decomposition reference checks for
// DepthwiseConv2D (mirrors tests/nn/test_conv_reference.cpp for Conv2D).
#include <gtest/gtest.h>

#include "nn/layers.h"
#include "util/rng.h"

namespace cea::nn {
namespace {

struct DwCase {
  std::size_t channels, size, kernel, stride, padding;
};

class DepthwiseReference : public ::testing::TestWithParam<DwCase> {};

TEST_P(DepthwiseReference, LinearityDecomposition) {
  const auto& param = GetParam();
  Rng rng(21);
  DepthwiseConv2D conv(param.channels, param.kernel, param.stride,
                       param.padding, rng);

  Tensor input({1, param.channels, param.size, param.size});
  Rng input_rng(23);
  for (std::size_t i = 0; i < input.size(); ++i)
    input[i] = static_cast<float>(input_rng.normal(0.0, 1.0));

  const Tensor direct = conv.forward(input);
  Tensor zero_input({1, param.channels, param.size, param.size});
  const Tensor bias_map = conv.forward(zero_input);

  Tensor reconstructed(direct.shape());
  for (std::size_t i = 0; i < reconstructed.size(); ++i)
    reconstructed[i] = bias_map[i];
  for (std::size_t i = 0; i < input.size(); ++i) {
    if (input[i] == 0.0f) continue;
    Tensor basis({1, param.channels, param.size, param.size});
    basis[i] = 1.0f;
    const Tensor response = conv.forward(basis);
    for (std::size_t k = 0; k < reconstructed.size(); ++k)
      reconstructed[k] += input[i] * (response[k] - bias_map[k]);
  }
  for (std::size_t k = 0; k < direct.size(); ++k)
    EXPECT_NEAR(direct[k], reconstructed[k], 1e-3f) << "output index " << k;
}

TEST_P(DepthwiseReference, CrossChannelIndependence) {
  const auto& param = GetParam();
  if (param.channels < 2) GTEST_SKIP();
  Rng rng(29);
  DepthwiseConv2D conv(param.channels, param.kernel, param.stride,
                       param.padding, rng);
  Tensor input({1, param.channels, param.size, param.size});
  // Excite only channel 0.
  for (std::size_t i = 0; i < param.size * param.size; ++i)
    input[i] = 1.0f;
  const Tensor out = conv.forward(input);
  // All other channels must be bias-only (zero).
  const std::size_t area = out.dim(2) * out.dim(3);
  for (std::size_t c = 1; c < param.channels; ++c) {
    for (std::size_t i = 0; i < area; ++i)
      EXPECT_EQ(out[c * area + i], 0.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DepthwiseReference,
    ::testing::Values(DwCase{1, 5, 3, 1, 0}, DwCase{2, 5, 3, 1, 1},
                      DwCase{3, 6, 3, 2, 1}, DwCase{2, 7, 5, 1, 2},
                      DwCase{4, 4, 3, 2, 1}),
    [](const ::testing::TestParamInfo<DwCase>& info) {
      const auto& c = info.param;
      return "c" + std::to_string(c.channels) + "s" + std::to_string(c.size) +
             "k" + std::to_string(c.kernel) + "st" +
             std::to_string(c.stride) + "p" + std::to_string(c.padding);
    });

}  // namespace
}  // namespace cea::nn
