#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.h"
#include "nn/model.h"

namespace cea::nn {
namespace {

Tensor ones(std::size_t n) {
  Tensor t({1, n});
  t.fill(1.0f);
  return t;
}

TEST(Dropout, EvalModeIsIdentity) {
  Dropout dropout(0.5, 1);
  dropout.set_training(false);
  const Tensor in = ones(100);
  const Tensor out = dropout.forward(in);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 1.0f);
}

TEST(Dropout, ZeroRateIsIdentity) {
  Dropout dropout(0.0, 2);
  const Tensor in = ones(50);
  const Tensor out = dropout.forward(in);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 1.0f);
}

TEST(Dropout, DropsApproximatelyRateFraction) {
  Dropout dropout(0.3, 3);
  const Tensor in = ones(20000);
  const Tensor out = dropout.forward(in);
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < out.size(); ++i) dropped += (out[i] == 0.0f);
  EXPECT_NEAR(static_cast<double>(dropped) / 20000.0, 0.3, 0.02);
}

TEST(Dropout, SurvivorsScaledToPreserveExpectation) {
  Dropout dropout(0.25, 4);
  const Tensor in = ones(20000);
  const Tensor out = dropout.forward(in);
  double total = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] != 0.0f) EXPECT_NEAR(out[i], 1.0f / 0.75f, 1e-5f);
    total += out[i];
  }
  EXPECT_NEAR(total / 20000.0, 1.0, 0.03);  // inverted-dropout invariance
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout dropout(0.5, 5);
  const Tensor in = ones(1000);
  const Tensor out = dropout.forward(in);
  Tensor grad({1, 1000});
  grad.fill(2.0f);
  const Tensor gin = dropout.backward(grad);
  for (std::size_t i = 0; i < 1000; ++i) {
    if (out[i] == 0.0f) {
      EXPECT_EQ(gin[i], 0.0f);
    } else {
      EXPECT_NEAR(gin[i], 2.0f * out[i], 1e-5f);  // same scale as forward
    }
  }
}

TEST(Dropout, SequentialSetTrainingToggles) {
  Rng rng(6);
  Sequential model("d");
  model.emplace<Dense>(10, 10, rng);
  model.emplace<Dropout>(0.9, 7);
  Tensor in({1, 10});
  in.fill(1.0f);
  model.set_training(false);
  const Tensor eval_a = model.forward(in);
  const Tensor eval_b = model.forward(in);
  for (std::size_t i = 0; i < eval_a.size(); ++i)
    EXPECT_EQ(eval_a[i], eval_b[i]);  // eval mode deterministic
  model.set_training(true);
  const Tensor train_a = model.forward(in);
  int diff = 0;
  for (std::size_t i = 0; i < train_a.size(); ++i)
    diff += (train_a[i] != eval_a[i]);
  EXPECT_GT(diff, 0);  // training mode stochastic
}

}  // namespace
}  // namespace cea::nn
