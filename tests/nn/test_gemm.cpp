// Equivalence tests for the tiled SIMD GEMM layer (nn/gemm.h).
//
// The contract under test (documented in gemm.h / DESIGN.md):
//  * every SIMD variant is BITWISE identical to the scalar reference
//    micro-kernel, because all of them evaluate the same zero-initialized
//    mul-then-add chain per output element;
//  * serial and thread-pool execution are BITWISE identical, because K is
//    never split and every C tile has exactly one writer;
//  * the whole thing is a correct GEMM (checked against a naive
//    double-accumulation loop with a tolerance).

#include "nn/gemm.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "nn/layers.h"
#include "nn/tensor.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "util/cpu.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cea::nn {
namespace {

using gemm::Op;
using gemm::Variant;

struct Shape {
  std::size_t m, n, k;
};

// Edge cases the tiling must survive: unit dims, sizes straddling the
// micro-tile widths (6/8 rows, 16/32 columns), K crossing the 256-element
// panel boundary, and the degenerate depthwise shape m == 1.
const Shape kShapes[] = {
    {1, 1, 1},    {1, 9, 196},  {1, 784, 9},   {2, 3, 4},
    {5, 16, 7},   {6, 16, 32},  {7, 17, 64},   {8, 32, 31},
    {9, 33, 300}, {13, 40, 257}, {32, 120, 400}, {32, 256, 784},
    {64, 196, 288}, {67, 70, 513},
};

void fill_random(std::vector<float>& v, Rng& rng) {
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
}

/// Storage shapes for op(A) (m x k) and op(B) (k x n), plus leading dims.
struct Operands {
  std::vector<float> a, b, c;
  std::size_t lda, ldb;
};

Operands make_operands(const Shape& s, Op op_a, Op op_b, Rng& rng) {
  Operands o;
  o.lda = op_a == Op::kNone ? s.k : s.m;
  o.ldb = op_b == Op::kNone ? s.n : s.k;
  o.a.resize(s.m * s.k);
  o.b.resize(s.k * s.n);
  o.c.resize(s.m * s.n);
  fill_random(o.a, rng);
  fill_random(o.b, rng);
  fill_random(o.c, rng);  // accumulate semantics: C starts non-zero
  return o;
}

/// Naive O(mnk) reference with double accumulation.
std::vector<float> naive_gemm(const Shape& s, const Operands& o, Op op_a,
                              Op op_b) {
  std::vector<float> c = o.c;
  for (std::size_t i = 0; i < s.m; ++i) {
    for (std::size_t j = 0; j < s.n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < s.k; ++p) {
        const float av =
            op_a == Op::kNone ? o.a[i * o.lda + p] : o.a[p * o.lda + i];
        const float bv =
            op_b == Op::kNone ? o.b[p * o.ldb + j] : o.b[j * o.ldb + p];
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      c[i * s.n + j] += static_cast<float>(acc);
    }
  }
  return c;
}

std::vector<float> run_variant(Variant variant, const Shape& s,
                               const Operands& o, Op op_a, Op op_b,
                               util::ThreadPool* pool) {
  std::vector<float> c = o.c;
  gemm::multiply_variant(variant, o.a.data(), o.lda, op_a, o.b.data(), o.ldb,
                         op_b, c.data(), s.n, s.m, s.n, s.k, pool);
  return c;
}

void expect_bitwise_equal(const std::vector<float>& expected,
                          const std::vector<float>& actual,
                          const std::string& what) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(std::memcmp(&expected[i], &actual[i], sizeof(float)), 0)
        << what << ": element " << i << " differs: " << expected[i]
        << " vs " << actual[i];
  }
}

const Op kOps[] = {Op::kNone, Op::kTranspose};

TEST(Gemm, MatchesNaiveReferenceAllOpCombos) {
  Rng rng(101);
  for (const Shape& s : kShapes) {
    for (Op op_a : kOps) {
      for (Op op_b : kOps) {
        const Operands o = make_operands(s, op_a, op_b, rng);
        const std::vector<float> expected = naive_gemm(s, o, op_a, op_b);
        std::vector<float> c = o.c;
        gemm::multiply(o.a.data(), o.lda, op_a, o.b.data(), o.ldb, op_b,
                       c.data(), s.n, s.m, s.n, s.k);
        for (std::size_t i = 0; i < c.size(); ++i) {
          const float tol =
              1e-4f * (1.0f + static_cast<float>(s.k) * 0.01f);
          ASSERT_NEAR(c[i], expected[i], tol)
              << s.m << "x" << s.n << "x" << s.k;
        }
      }
    }
  }
}

TEST(Gemm, OverwriteModeIgnoresPriorC) {
  Rng rng(151);
  for (const Shape& s : kShapes) {
    for (Op op_a : kOps) {
      for (Op op_b : kOps) {
        Operands o = make_operands(s, op_a, op_b, rng);
        // Expected = naive product over a zeroed C; the actual C is left
        // poisoned to prove accumulate == false never reads it.
        Operands zeroed = o;
        std::fill(zeroed.c.begin(), zeroed.c.end(), 0.0f);
        const std::vector<float> expected =
            naive_gemm(s, zeroed, op_a, op_b);
        std::vector<float> c(s.m * s.n,
                             std::numeric_limits<float>::quiet_NaN());
        gemm::multiply(o.a.data(), o.lda, op_a, o.b.data(), o.ldb, op_b,
                       c.data(), s.n, s.m, s.n, s.k, nullptr,
                       /*accumulate=*/false);
        for (std::size_t i = 0; i < c.size(); ++i) {
          const float tol =
              1e-4f * (1.0f + static_cast<float>(s.k) * 0.01f);
          ASSERT_NEAR(c[i], expected[i], tol)
              << s.m << "x" << s.n << "x" << s.k;
        }
      }
    }
  }
}

TEST(Gemm, OverwriteBitwiseMatchesZeroFillAccumulate) {
  // Overwrite stores exactly the accumulator a zero-initialized C would
  // receive, for every variant and for pooled runs.
  util::ThreadPool pool(3);
  Rng rng(161);
  const Variant variants[] = {Variant::kScalar, gemm::active_variant()};
  for (const Shape& s : kShapes) {
    const Operands o = make_operands(s, Op::kNone, Op::kNone, rng);
    for (Variant variant : variants) {
      for (util::ThreadPool* p : {static_cast<util::ThreadPool*>(nullptr),
                                  &pool}) {
        std::vector<float> acc(s.m * s.n, 0.0f);
        gemm::multiply_variant(variant, o.a.data(), o.lda, Op::kNone,
                               o.b.data(), o.ldb, Op::kNone, acc.data(),
                               s.n, s.m, s.n, s.k, p);
        std::vector<float> over(s.m * s.n,
                                std::numeric_limits<float>::quiet_NaN());
        gemm::multiply_variant(variant, o.a.data(), o.lda, Op::kNone,
                               o.b.data(), o.ldb, Op::kNone, over.data(),
                               s.n, s.m, s.n, s.k, p,
                               /*accumulate=*/false);
        expect_bitwise_equal(acc, over, "overwrite vs zero+accumulate");
      }
    }
  }
}

TEST(Gemm, Avx2BitwiseMatchesScalar) {
  if (!util::have_avx2()) GTEST_SKIP() << "no AVX2 on this machine";
  Rng rng(202);
  for (const Shape& s : kShapes) {
    for (Op op_a : kOps) {
      for (Op op_b : kOps) {
        const Operands o = make_operands(s, op_a, op_b, rng);
        expect_bitwise_equal(
            run_variant(Variant::kScalar, s, o, op_a, op_b, nullptr),
            run_variant(Variant::kAvx2, s, o, op_a, op_b, nullptr),
            "avx2 vs scalar");
      }
    }
  }
}

TEST(Gemm, Avx512BitwiseMatchesScalar) {
  if (!util::have_avx512()) GTEST_SKIP() << "no AVX-512 on this machine";
  Rng rng(303);
  for (const Shape& s : kShapes) {
    for (Op op_a : kOps) {
      for (Op op_b : kOps) {
        const Operands o = make_operands(s, op_a, op_b, rng);
        expect_bitwise_equal(
            run_variant(Variant::kScalar, s, o, op_a, op_b, nullptr),
            run_variant(Variant::kAvx512, s, o, op_a, op_b, nullptr),
            "avx512 vs scalar");
      }
    }
  }
}

TEST(Gemm, PoolBitwiseMatchesSerial) {
  util::ThreadPool pool(3);
  Rng rng(404);
  const Variant variants[] = {Variant::kScalar, gemm::active_variant()};
  for (Variant variant : variants) {
    if (variant == Variant::kAvx2 && !util::have_avx2()) continue;
    if (variant == Variant::kAvx512 && !util::have_avx512()) continue;
    for (const Shape& s : kShapes) {
      for (Op op_a : kOps) {
        const Operands o = make_operands(s, op_a, Op::kNone, rng);
        expect_bitwise_equal(
            run_variant(variant, s, o, op_a, Op::kNone, nullptr),
            run_variant(variant, s, o, op_a, Op::kNone, &pool),
            "pooled vs serial");
      }
    }
  }
}

TEST(Gemm, RandomizedShapesAcrossVariantsAndPool) {
  util::ThreadPool pool(2);
  Rng rng(505);
  for (int trial = 0; trial < 25; ++trial) {
    const Shape s{1 + static_cast<std::size_t>(rng.uniform(0.0, 90.0)),
                  1 + static_cast<std::size_t>(rng.uniform(0.0, 90.0)),
                  1 + static_cast<std::size_t>(rng.uniform(0.0, 600.0))};
    const Op op_a = rng.uniform() < 0.5 ? Op::kNone : Op::kTranspose;
    const Op op_b = rng.uniform() < 0.5 ? Op::kNone : Op::kTranspose;
    const Operands o = make_operands(s, op_a, op_b, rng);
    const std::vector<float> scalar =
        run_variant(Variant::kScalar, s, o, op_a, op_b, nullptr);
    if (util::have_avx2())
      expect_bitwise_equal(
          scalar, run_variant(Variant::kAvx2, s, o, op_a, op_b, nullptr),
          "avx2");
    if (util::have_avx512())
      expect_bitwise_equal(
          scalar, run_variant(Variant::kAvx512, s, o, op_a, op_b, nullptr),
          "avx512");
    expect_bitwise_equal(
        scalar,
        run_variant(gemm::active_variant(), s, o, op_a, op_b, &pool),
        "pooled active variant");
  }
}

/// Collect every parameter of a model into one flat vector.
std::vector<float> snapshot_parameters(Sequential& model) {
  std::vector<float> out;
  model.visit_parameters([&](std::span<float> block) {
    out.insert(out.end(), block.begin(), block.end());
  });
  return out;
}

TEST(Gemm, TrainingIsBitIdenticalSerialVsPooled) {
  // Layer-level determinism: a short CNN training run must produce
  // bit-identical parameters whether the compute pool is attached or not.
  const auto train_once = [](util::ThreadPool* pool) {
    set_compute_pool(pool);
    Rng rng(99);
    Sequential model = make_simple_cnn("det-cnn", mnist_spec(), 4, 8, rng);
    Tensor samples({24, 1, 28, 28});
    std::vector<std::size_t> labels(24);
    for (auto& v : samples.data())
      v = static_cast<float>(rng.uniform());
    for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = i % 10;
    TrainConfig config;
    config.epochs = 2;
    config.batch_size = 8;
    train_sgd(model, samples, labels, config, rng);
    set_compute_pool(nullptr);
    return snapshot_parameters(model);
  };
  const std::vector<float> serial = train_once(nullptr);
  util::ThreadPool pool(3);
  const std::vector<float> pooled = train_once(&pool);
  expect_bitwise_equal(serial, pooled, "trained parameters");
}

TEST(Gemm, LayersMatchReferenceBackend) {
  // The GEMM path reorders float accumulation relative to the seed loops,
  // so agreement is tolerance-level, not bitwise. Forward and backward of
  // all three rewired layers against the preserved reference path.
  Rng rng(77);
  Sequential gemm_model =
      make_simple_cnn("ref-cnn", mnist_spec(), 4, 8, rng);
  Rng rng2(77);
  Sequential ref_model =
      make_simple_cnn("ref-cnn", mnist_spec(), 4, 8, rng2);

  Tensor batch({3, 1, 28, 28});
  Rng data_rng(7);
  for (auto& v : batch.data())
    v = static_cast<float>(data_rng.uniform());
  std::vector<std::size_t> labels = {1, 2, 3};

  set_compute_backend(ComputeBackend::kGemm);
  const Tensor out_gemm = gemm_model.forward(batch);
  set_compute_backend(ComputeBackend::kReference);
  const Tensor out_ref = ref_model.forward(batch);
  set_compute_backend(ComputeBackend::kGemm);

  ASSERT_EQ(out_gemm.shape(), out_ref.shape());
  for (std::size_t i = 0; i < out_gemm.size(); ++i)
    EXPECT_NEAR(out_gemm[i], out_ref[i], 1e-4f);
}

}  // namespace
}  // namespace cea::nn
