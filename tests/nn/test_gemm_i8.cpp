// Tests for the int8 inference GEMM (gemm::multiply_i8) and the
// kGemmInt8 layer path.
//
// The contract under test (documented in gemm.h / gemm_kernels.h /
// DESIGN.md §12) is STRONGER than the fp32 one: the inner product is
// exact integer arithmetic and the dequantize epilogue one pinned float
// chain, so
//  * scalar, AVX2 and AVX-512 VNNI kernels are BITWISE identical,
//  * serial and thread-pool runs are BITWISE identical,
//  * a whole model forward under ComputeBackend::kGemmInt8 is BITWISE
//    identical across kernel variants (via gemm::set_i8_variant_cap),
// and the quantization itself obeys its spec: symmetric per-channel
// weight grids saturating at +-127, round-half-away-from-zero ties,
// scale-0 guard for flat/denormal activation rows, non-finite weights
// skipped (quantized to 0) and counted.

#include "nn/gemm.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "nn/layers.h"
#include "nn/model.h"
#include "nn/quantize.h"
#include "nn/tensor.h"
#include "nn/zoo.h"
#include "util/cpu.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cea::nn {
namespace {

using gemm::Int8PackedB;
using gemm::Op;
using gemm::Variant;

struct Shape {
  std::size_t m, n, k;
};

// The fp32 battery's edge cases plus int8-specific ones: n straddling the
// 16/32 column tiles and the 32-column panel padding, k straddling the
// 4-element groups, m straddling the 6/8 row tiles.
const Shape kShapes[] = {
    {1, 1, 1},    {1, 9, 196},   {1, 784, 9},    {2, 3, 4},
    {5, 16, 7},   {6, 16, 32},   {7, 17, 64},    {8, 32, 31},
    {9, 33, 300}, {13, 40, 257}, {32, 120, 400}, {32, 256, 784},
    {64, 196, 288}, {67, 70, 513},
};

const Op kOps[] = {Op::kNone, Op::kTranspose};

struct Operands {
  std::vector<float> a, b, bias;
  std::size_t lda, ldb;
};

Operands make_operands(const Shape& s, Op op_a, Op op_b, Rng& rng) {
  Operands o;
  o.lda = op_a == Op::kNone ? s.k : s.m;
  o.ldb = op_b == Op::kNone ? s.n : s.k;
  o.a.resize(s.m * s.k);
  o.b.resize(s.k * s.n);
  o.bias.resize(s.n);
  for (auto& x : o.a) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& x : o.b) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& x : o.bias) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return o;
}

std::vector<float> run_i8(Variant variant, const Shape& s, const Operands& o,
                          Op op_a, Op op_b, const float* bias,
                          util::ThreadPool* pool) {
  const Int8PackedB panel =
      gemm::pack_b_i8(o.b.data(), o.ldb, op_b, s.k, s.n);
  std::vector<float> c(s.m * s.n, std::numeric_limits<float>::quiet_NaN());
  gemm::multiply_i8_variant(variant, o.a.data(), o.lda, op_a, panel, bias,
                            c.data(), s.n, s.m, s.n, s.k, pool);
  return c;
}

void expect_bitwise_equal(const std::vector<float>& expected,
                          const std::vector<float>& actual,
                          const std::string& what) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(std::memcmp(&expected[i], &actual[i], sizeof(float)), 0)
        << what << ": element " << i << " differs: " << expected[i]
        << " vs " << actual[i];
  }
}

float op_at(const std::vector<float>& v, std::size_t ld, Op op,
            std::size_t i, std::size_t j) {
  return op == Op::kNone ? v[i * ld + j] : v[j * ld + i];
}

TEST(GemmI8, MatchesFloatReferenceWithinQuantizationError) {
  // Correctness against exact float math, with a rigorous per-element
  // error bound derived from the documented grids: activation rows use
  // sa_i = (max(0,max a) - min(0,min a)) / 127 and weights channel grids
  // sw_j = max|w_j| / 127, each value off its grid point by at most half
  // a step, so |err_ij| <= 0.5 sa_i sum_p|w_pj| + 0.5 sw_j sum_p|a_ip| +
  // 0.25 k sa_i sw_j.
  Rng rng(808);
  for (const Shape& s : kShapes) {
    for (Op op_a : kOps) {
      for (Op op_b : kOps) {
        const Operands o = make_operands(s, op_a, op_b, rng);
        const std::vector<float> c =
            run_i8(Variant::kScalar, s, o, op_a, op_b, o.bias.data(),
                   nullptr);
        for (std::size_t i = 0; i < s.m; ++i) {
          double amin = 0.0, amax = 0.0, asum = 0.0;
          for (std::size_t p = 0; p < s.k; ++p) {
            const double v = op_at(o.a, o.lda, op_a, i, p);
            amin = std::min(amin, v);
            amax = std::max(amax, v);
            asum += std::abs(v);
          }
          const double sa = (amax - amin) / 127.0;
          for (std::size_t j = 0; j < s.n; ++j) {
            double wmax = 0.0, wsum = 0.0, exact = 0.0;
            for (std::size_t p = 0; p < s.k; ++p) {
              const double w = op_at(o.b, o.ldb, op_b, p, j);
              wmax = std::max(wmax, std::abs(w));
              wsum += std::abs(w);
              exact += op_at(o.a, o.lda, op_a, i, p) * w;
            }
            const double sw = wmax / 127.0;
            const double bound = 0.5 * sa * wsum + 0.5 * sw * asum +
                                 0.25 * static_cast<double>(s.k) * sa * sw +
                                 1e-4;
            EXPECT_NEAR(c[i * s.n + j], exact + o.bias[j], bound)
                << s.m << "x" << s.n << "x" << s.k << " at (" << i << ","
                << j << ")";
          }
        }
      }
    }
  }
}

TEST(GemmI8, Avx2BitwiseMatchesScalar) {
  if (!util::have_avx2()) GTEST_SKIP() << "no AVX2 on this machine";
  Rng rng(909);
  for (const Shape& s : kShapes) {
    for (Op op_a : kOps) {
      for (Op op_b : kOps) {
        const Operands o = make_operands(s, op_a, op_b, rng);
        // With and without a bias: the null-bias path adds a staged zero
        // and must stay on the same chain.
        for (const float* bias : {o.bias.data(),
                                  static_cast<const float*>(nullptr)}) {
          expect_bitwise_equal(
              run_i8(Variant::kScalar, s, o, op_a, op_b, bias, nullptr),
              run_i8(Variant::kAvx2, s, o, op_a, op_b, bias, nullptr),
              "i8 avx2 vs scalar");
        }
      }
    }
  }
}

TEST(GemmI8, Avx512VnniBitwiseMatchesScalar) {
  if (!util::have_avx512_vnni())
    GTEST_SKIP() << "no AVX-512 VNNI on this machine";
  Rng rng(1010);
  for (const Shape& s : kShapes) {
    for (Op op_a : kOps) {
      for (Op op_b : kOps) {
        const Operands o = make_operands(s, op_a, op_b, rng);
        for (const float* bias : {o.bias.data(),
                                  static_cast<const float*>(nullptr)}) {
          expect_bitwise_equal(
              run_i8(Variant::kScalar, s, o, op_a, op_b, bias, nullptr),
              run_i8(Variant::kAvx512, s, o, op_a, op_b, bias, nullptr),
              "i8 vnni vs scalar");
        }
      }
    }
  }
}

TEST(GemmI8, PoolBitwiseMatchesSerial) {
  util::ThreadPool pool(3);
  Rng rng(1111);
  const Variant variants[] = {Variant::kScalar, gemm::active_variant_i8()};
  for (Variant variant : variants) {
    for (const Shape& s : kShapes) {
      for (Op op_a : kOps) {
        const Operands o = make_operands(s, op_a, Op::kNone, rng);
        expect_bitwise_equal(
            run_i8(variant, s, o, op_a, Op::kNone, o.bias.data(), nullptr),
            run_i8(variant, s, o, op_a, Op::kNone, o.bias.data(), &pool),
            "i8 pooled vs serial");
      }
    }
  }
}

TEST(GemmI8, PackSaturatesAtPlusMinus127) {
  // Symmetric grid: the channel max lands exactly on +-127 and nothing
  // ever escapes the s8 range.
  const std::size_t k = 5, n = 2;
  // Channel 0: max |.| = 2.0 -> sw = 2/127; 2.0 -> 127, -2.0 -> -127.
  // Channel 1: constant column exercising an exact grid.
  const float b[k * n] = {2.0f, 1.0f, -2.0f, -1.0f, 0.5f, 0.25f,
                          -0.5f, -0.25f, 0.0f, 0.0f};
  const Int8PackedB panel = gemm::pack_b_i8(b, n, Op::kNone, k, n);
  EXPECT_EQ(panel.skipped_non_finite, 0u);
  EXPECT_FLOAT_EQ(panel.scales[0], 2.0f / 127.0f);
  std::int8_t lo = 0, hi = 0;
  for (std::int8_t q : panel.data) {
    lo = std::min(lo, q);
    hi = std::max(hi, q);
  }
  EXPECT_EQ(lo, -127);
  EXPECT_EQ(hi, 127);
  // Channel 0 bytes in k order: 2.0 -> 127, -2.0 -> -127, 0.5 -> 32
  // (0.5 / (2/127) = 31.75 -> 32), -0.5 -> -32, 0 -> 0.
  const auto at = [&](std::size_t p, std::size_t j) {
    return panel.data[((p / 4) * panel.n_pad + j) * 4 + (p % 4)];
  };
  EXPECT_EQ(at(0, 0), 127);
  EXPECT_EQ(at(1, 0), -127);
  EXPECT_EQ(at(2, 0), 32);
  EXPECT_EQ(at(3, 0), -32);
  EXPECT_EQ(at(4, 0), 0);
  // col_sums match the stored bytes.
  EXPECT_EQ(panel.col_sums[0], 127 - 127 + 32 - 32 + 0);
}

TEST(GemmI8, PackRoundsTiesAwayFromZero) {
  // Channel max 127 -> sw = 1.0, so values ARE their quantized levels;
  // x.5 ties must round away from zero (std::round), not to even.
  const std::size_t k = 6, n = 1;
  const float b[k] = {127.0f, 2.5f, -2.5f, 1.5f, -1.5f, 0.5f};
  const Int8PackedB panel = gemm::pack_b_i8(b, n, Op::kNone, k, n);
  EXPECT_FLOAT_EQ(panel.scales[0], 1.0f);
  const auto at = [&](std::size_t p) {
    return panel.data[(p / 4) * panel.n_pad * 4 + (p % 4)];
  };
  EXPECT_EQ(at(0), 127);
  EXPECT_EQ(at(1), 3);
  EXPECT_EQ(at(2), -3);
  EXPECT_EQ(at(3), 2);
  EXPECT_EQ(at(4), -2);
  EXPECT_EQ(at(5), 1);
}

TEST(GemmI8, PackSkipsNonFiniteWeights) {
  const std::size_t k = 4, n = 2;
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  // Channel 0 holds a NaN and an inf among finite values; channel 1 is
  // clean. The scale must come from the finite max (1.0, not inf).
  const float b[k * n] = {1.0f, 0.5f, nan, 0.25f, inf, -0.5f, -1.0f, 0.75f};
  const Int8PackedB panel = gemm::pack_b_i8(b, n, Op::kNone, k, n);
  EXPECT_EQ(panel.skipped_non_finite, 2u);
  EXPECT_FLOAT_EQ(panel.scales[0], 1.0f / 127.0f);
  const auto at = [&](std::size_t p, std::size_t j) {
    return panel.data[((p / 4) * panel.n_pad + j) * 4 + (p % 4)];
  };
  EXPECT_EQ(at(1, 0), 0);  // NaN -> 0
  EXPECT_EQ(at(2, 0), 0);  // inf -> 0
  EXPECT_EQ(at(0, 0), 127);
  EXPECT_EQ(at(3, 0), -127);
  // A multiply through the panel stays finite.
  const float a[2 * k] = {1.0f, 2.0f, 3.0f, 4.0f, -1.0f, 0.0f, 1.0f, 0.5f};
  std::vector<float> c(2 * n);
  gemm::multiply_i8_variant(Variant::kScalar, a, k, Op::kNone, panel,
                            nullptr, c.data(), n, 2, n, k);
  for (float v : c) EXPECT_TRUE(std::isfinite(v));
}

TEST(GemmI8, ZeroActivationRowHitsScaleZeroGuard) {
  // An all-zero activation row has no signal: its output must be exactly
  // the bias, on every variant.
  const std::size_t m = 3, n = 20, k = 40;
  Rng rng(1212);
  Operands o = make_operands({m, n, k}, Op::kNone, Op::kNone, rng);
  for (std::size_t p = 0; p < k; ++p) o.a[1 * k + p] = 0.0f;
  const std::vector<float> c = run_i8(Variant::kScalar, {m, n, k}, o,
                                      Op::kNone, Op::kNone, o.bias.data(),
                                      nullptr);
  for (std::size_t j = 0; j < n; ++j)
    EXPECT_EQ(c[1 * n + j], o.bias[j]) << "column " << j;
}

TEST(GemmI8, DenormalActivationRowDoesNotBlowUp) {
  // A row whose range is so small that range/127 underflows to zero must
  // take the scale-0 guard (dividing by the underflowed scale would
  // produce inf and undefined int casts), not crash or poison C.
  const std::size_t m = 2, n = 8, k = 8;
  Rng rng(1313);
  Operands o = make_operands({m, n, k}, Op::kNone, Op::kNone, rng);
  const float denorm = std::numeric_limits<float>::denorm_min();
  for (std::size_t p = 0; p < k; ++p) o.a[0 * k + p] = 0.0f;
  o.a[0 * k + 3] = denorm;  // range = denorm_min; / 127 underflows to 0
  const std::vector<float> c = run_i8(Variant::kScalar, {m, n, k}, o,
                                      Op::kNone, Op::kNone, o.bias.data(),
                                      nullptr);
  for (std::size_t j = 0; j < n; ++j) {
    ASSERT_TRUE(std::isfinite(c[j]));
    EXPECT_EQ(c[j], o.bias[j]);
  }
}

TEST(GemmI8, NonFiniteActivationsQuantizeToZeroPoint) {
  // NaN/inf activations dequantize to 0 (they map to the zero point), so
  // the rest of the row still contributes normally and C stays finite.
  const std::size_t m = 1, n = 12, k = 16;
  Rng rng(1414);
  Operands o = make_operands({m, n, k}, Op::kNone, Op::kNone, rng);
  Operands poisoned = o;
  poisoned.a[4] = std::numeric_limits<float>::quiet_NaN();
  poisoned.a[9] = std::numeric_limits<float>::infinity();
  // Zeroing the same entries in the clean copy gives the same quantized
  // row IF min/max over the remaining entries already bracket 0 — make
  // sure of that by planting explicit extremes elsewhere.
  o.a[0] = poisoned.a[0] = 1.0f;
  o.a[1] = poisoned.a[1] = -1.0f;
  o.a[4] = 0.0f;
  o.a[9] = 0.0f;
  const std::vector<float> clean = run_i8(
      Variant::kScalar, {m, n, k}, o, Op::kNone, Op::kNone, nullptr, nullptr);
  const std::vector<float> survived =
      run_i8(Variant::kScalar, {m, n, k}, poisoned, Op::kNone, Op::kNone,
             nullptr, nullptr);
  expect_bitwise_equal(clean, survived, "non-finite activations vs zeros");
}

TEST(GemmI8, PanelScalesMatchQuantizeModelGrids) {
  // The one-scale-computation contract: pack_b_i8's per-channel scales
  // equal nn::per_channel_scales(weights, channels, per_channel, 8) on
  // the same weight matrix — fake-quant and the real int8 path share
  // grids.
  Rng rng(1515);
  const std::size_t out = 7, in = 33;
  std::vector<float> w(out * in);
  for (auto& x : w) x = static_cast<float>(rng.uniform(-2.0, 2.0));
  const std::vector<float> grids = per_channel_scales(w.data(), out, in, 8);
  // Dense packs W (out x in) transposed: op_b(B) is (in x out), channel j
  // = output feature j.
  const Int8PackedB panel =
      gemm::pack_b_i8(w.data(), in, Op::kTranspose, in, out);
  ASSERT_EQ(grids.size(), out);
  for (std::size_t j = 0; j < out; ++j)
    EXPECT_EQ(grids[j], panel.scales[j]) << "channel " << j;
}

TEST(GemmI8, SizeMbChargesOneBytePerWeightPlusScales) {
  const Int8PackedB panel = [] {
    std::vector<float> w(64 * 100, 0.25f);
    return gemm::pack_b_i8(w.data(), 100, Op::kNone, 64, 100);
  }();
  EXPECT_NEAR(panel.size_mb(), (64.0 * 100.0 + 4.0 * 100.0) / (1024 * 1024),
              1e-12);
}

/// Forward a fresh fig12-style model under kGemmInt8 with the dispatch
/// capped at `cap`, returning the logits.
std::vector<float> forward_int8_capped(Variant cap, util::ThreadPool* pool) {
  set_compute_pool(pool);
  gemm::set_i8_variant_cap(cap);
  Rng rng(42);
  Sequential model = make_simple_cnn("fig12-cnn", mnist_spec(), 16, 32, rng);
  model.set_training(false);
  Tensor batch({5, 1, 28, 28});
  Rng data_rng(7);
  for (auto& v : batch.data()) v = static_cast<float>(data_rng.uniform());
  ScopedComputeBackend scoped(ComputeBackend::kGemmInt8);
  const Tensor out = model.forward(batch);
  gemm::set_i8_variant_cap(Variant::kAvx512);  // uncap
  set_compute_pool(nullptr);
  return {out.data().begin(), out.data().end()};
}

TEST(GemmI8, WholeForwardBitwiseAcrossVariantsAndPool) {
  // End-to-end determinism on the fig12 MNIST CNN (conv -> pool -> conv
  // -> pool -> dense): the full kGemmInt8 forward — im2col, quantize,
  // kernels, transpose epilogue — lands on identical bits whichever
  // kernel variant runs and whether a pool is attached.
  const std::vector<float> scalar =
      forward_int8_capped(Variant::kScalar, nullptr);
  if (util::have_avx2())
    expect_bitwise_equal(scalar,
                         forward_int8_capped(Variant::kAvx2, nullptr),
                         "forward avx2 vs scalar");
  if (util::have_avx512_vnni())
    expect_bitwise_equal(scalar,
                         forward_int8_capped(Variant::kAvx512, nullptr),
                         "forward vnni vs scalar");
  util::ThreadPool pool(3);
  expect_bitwise_equal(scalar, forward_int8_capped(Variant::kScalar, &pool),
                       "forward pooled vs serial");
}

TEST(GemmI8, PanelInvalidatedWhenWeightsChange) {
  // Mutating weights through visit_parameters must drop the cached panel:
  // the next int8 forward has to match a fresh model built with the
  // mutated weights, not the stale quantization.
  Rng rng(2024);
  Sequential model("inval");
  model.emplace<Dense>(24, 10, rng);
  Tensor x({3, 24});
  Rng data_rng(5);
  for (auto& v : x.data()) v = static_cast<float>(data_rng.uniform(-1.0, 1.0));

  ScopedComputeBackend scoped(ComputeBackend::kGemmInt8);
  const Tensor before = model.forward(x);  // builds + caches the panel
  std::vector<float> weights_copy;
  model.visit_parameters([&](std::span<float> block) {
    for (auto& w : block) w *= 2.0f;
    weights_copy.insert(weights_copy.end(), block.begin(), block.end());
  });
  const Tensor after = model.forward(x);

  Rng rng2(1);
  Sequential fresh("inval-fresh");
  fresh.emplace<Dense>(24, 10, rng2);
  std::size_t off = 0;
  fresh.visit_parameters([&](std::span<float> block) {
    std::copy(weights_copy.begin() + static_cast<std::ptrdiff_t>(off),
              weights_copy.begin() + static_cast<std::ptrdiff_t>(off) +
                  static_cast<std::ptrdiff_t>(block.size()),
              block.begin());
    off += block.size();
  });
  const Tensor expected = fresh.forward(x);

  ASSERT_EQ(after.size(), expected.size());
  const std::span<const float> after_d = after.data();
  const std::span<const float> expected_d = expected.data();
  for (std::size_t i = 0; i < after.size(); ++i)
    ASSERT_EQ(std::memcmp(&after_d[i], &expected_d[i], sizeof(float)), 0)
        << "stale panel served at element " << i;
  // And the mutation was visible at all (doubled weights change logits).
  bool any_diff = false;
  for (std::size_t i = 0; i < after.size(); ++i)
    any_diff |= after[i] != before[i];
  EXPECT_TRUE(any_diff);
}

TEST(GemmI8, QuantizedModelMatchesCappedBackendForward) {
  // QuantizedModel is sugar for ScopedComputeBackend(kGemmInt8) around
  // the wrapped model; its outputs must be bitwise those of the wrapped
  // model run under the backend directly.
  Rng rng(31);
  Sequential a = make_mlp("qm-mlp", mnist_spec(), 32, rng);
  a.set_training(false);
  Tensor x({4, 1, 28, 28});
  Rng data_rng(9);
  for (auto& v : x.data()) v = static_cast<float>(data_rng.uniform());

  Tensor direct;
  {
    ScopedComputeBackend scoped(ComputeBackend::kGemmInt8);
    direct = a.forward(x);
  }
  QuantizedModel qm(std::move(a));
  EXPECT_EQ(qm.name(), "qm-mlp-int8");
  const Tensor wrapped = qm.forward(x);
  ASSERT_EQ(wrapped.size(), direct.size());
  const std::span<const float> wrapped_d = wrapped.data();
  const std::span<const float> direct_d = direct.data();
  for (std::size_t i = 0; i < wrapped.size(); ++i)
    ASSERT_EQ(std::memcmp(&wrapped_d[i], &direct_d[i], sizeof(float)), 0);
  // Artifact size: strictly below the fp32 size, above 1/8 of it (int8
  // weights + fp32 biases and scales land between 1/4 and 1x).
  const double fp32_mb = qm.model().size_mb();
  EXPECT_LT(qm.size_mb(), fp32_mb);
  EXPECT_GT(qm.size_mb(), fp32_mb / 8.0);
}

TEST(GemmI8, BackwardStillRunsFp32UnderInt8Backend) {
  // kGemmInt8 is forward/inference-only: backward under the int8 backend
  // must produce exactly the fp32 (kGemm) gradients.
  const auto run = [](ComputeBackend fwd_backend) {
    Rng rng(77);
    Sequential model("bwd");
    model.emplace<Dense>(12, 6, rng);
    Tensor x({2, 12});
    Rng data_rng(3);
    for (auto& v : x.data())
      v = static_cast<float>(data_rng.uniform(-1.0, 1.0));
    Tensor grad({2, 6});
    for (auto& v : grad.data())
      v = static_cast<float>(data_rng.uniform(-1.0, 1.0));
    ScopedComputeBackend scoped(fwd_backend);
    model.forward(x);
    model.backward(grad);
    std::vector<float> grads;
    model.visit_gradients([&](std::span<float>, std::span<float> g) {
      grads.insert(grads.end(), g.begin(), g.end());
    });
    return grads;
  };
  expect_bitwise_equal(run(ComputeBackend::kGemm),
                       run(ComputeBackend::kGemmInt8),
                       "backward under int8 backend");
}

}  // namespace
}  // namespace cea::nn
