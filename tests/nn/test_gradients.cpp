// Finite-difference validation of every layer's backward pass (input
// gradients). For a scalar functional phi(x) = sum_k c_k * L(x)_k the
// backward pass with grad_output = c must match central differences.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/layers.h"
#include "util/rng.h"

namespace cea::nn {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

/// Max relative error between analytic and numeric input gradients.
double check_input_gradient(Layer& layer, Tensor input, Rng& rng,
                            float eps = 1e-3f) {
  const Tensor out = layer.forward(input);
  Tensor coeffs(out.shape());
  for (std::size_t i = 0; i < coeffs.size(); ++i)
    coeffs[i] = static_cast<float>(rng.normal(0.0, 1.0));
  const Tensor analytic = layer.backward(coeffs);

  double worst = 0.0;
  // Probe a subset of coordinates to keep the test fast.
  const std::size_t stride = std::max<std::size_t>(1, input.size() / 24);
  for (std::size_t i = 0; i < input.size(); i += stride) {
    Tensor plus = input, minus = input;
    plus[i] += eps;
    minus[i] -= eps;
    const Tensor out_plus = layer.forward(plus);
    const Tensor out_minus = layer.forward(minus);
    double phi_plus = 0.0, phi_minus = 0.0;
    for (std::size_t k = 0; k < out.size(); ++k) {
      phi_plus += static_cast<double>(coeffs[k]) * out_plus[k];
      phi_minus += static_cast<double>(coeffs[k]) * out_minus[k];
    }
    const double numeric = (phi_plus - phi_minus) / (2.0 * eps);
    const double denom =
        std::max(1.0, std::abs(numeric) + std::abs(analytic[i]));
    worst = std::max(worst,
                     std::abs(numeric - analytic[i]) / denom);
  }
  return worst;
}

TEST(GradientCheck, Dense) {
  Rng rng(101);
  Dense layer(6, 4, rng);
  const double err = check_input_gradient(layer, random_tensor({2, 6}, rng),
                                          rng);
  EXPECT_LT(err, 2e-2);
}

TEST(GradientCheck, Conv2DNoPadding) {
  Rng rng(102);
  Conv2D layer(2, 3, 3, 1, 0, rng);
  const double err =
      check_input_gradient(layer, random_tensor({1, 2, 6, 6}, rng), rng);
  EXPECT_LT(err, 2e-2);
}

TEST(GradientCheck, Conv2DWithPadding) {
  Rng rng(103);
  Conv2D layer(1, 2, 3, 1, 1, rng);
  const double err =
      check_input_gradient(layer, random_tensor({2, 1, 5, 5}, rng), rng);
  EXPECT_LT(err, 2e-2);
}

TEST(GradientCheck, Conv2DStrided) {
  Rng rng(104);
  Conv2D layer(2, 2, 3, 2, 1, rng);
  const double err =
      check_input_gradient(layer, random_tensor({1, 2, 8, 8}, rng), rng);
  EXPECT_LT(err, 2e-2);
}

TEST(GradientCheck, DepthwiseConv2D) {
  Rng rng(105);
  DepthwiseConv2D layer(3, 3, 1, 1, rng);
  const double err =
      check_input_gradient(layer, random_tensor({1, 3, 6, 6}, rng), rng);
  EXPECT_LT(err, 2e-2);
}

TEST(GradientCheck, DepthwiseConv2DStrided) {
  Rng rng(106);
  DepthwiseConv2D layer(2, 3, 2, 1, rng);
  const double err =
      check_input_gradient(layer, random_tensor({1, 2, 8, 8}, rng), rng);
  EXPECT_LT(err, 2e-2);
}

TEST(GradientCheck, ReLUAwayFromKink) {
  Rng rng(107);
  ReLU layer;
  Tensor input = random_tensor({2, 10}, rng);
  // Push values away from zero so finite differences are clean.
  for (std::size_t i = 0; i < input.size(); ++i)
    input[i] += (input[i] >= 0.0f ? 0.5f : -0.5f);
  const double err = check_input_gradient(layer, input, rng);
  EXPECT_LT(err, 2e-2);
}

TEST(GradientCheck, GlobalAvgPool) {
  Rng rng(108);
  GlobalAvgPool layer;
  const double err =
      check_input_gradient(layer, random_tensor({2, 3, 4, 4}, rng), rng);
  EXPECT_LT(err, 2e-2);
}

TEST(GradientCheck, Flatten) {
  Rng rng(109);
  Flatten layer;
  const double err =
      check_input_gradient(layer, random_tensor({2, 2, 3, 3}, rng), rng);
  EXPECT_LT(err, 2e-2);
}

TEST(GradientCheck, MaxPoolAwayFromTies) {
  Rng rng(110);
  MaxPool2D layer(2);
  // Distinct values guarantee a stable argmax under the probe epsilon.
  Tensor input({1, 1, 4, 4});
  for (std::size_t i = 0; i < input.size(); ++i)
    input[i] = static_cast<float>(i) * 0.37f +
               static_cast<float>(rng.uniform(0.0, 0.1));
  const double err = check_input_gradient(layer, input, rng, 5e-4f);
  EXPECT_LT(err, 2e-2);
}

/// Parameter gradients validated indirectly: one SGD step along the
/// analytic gradient must reduce the scalar objective.
TEST(GradientCheck, DenseParameterStepDecreasesLoss) {
  Rng rng(111);
  Dense layer(5, 3, rng);
  const Tensor input = random_tensor({4, 5}, rng);
  auto objective = [&](Layer& l) {
    const Tensor out = l.forward(input);
    double v = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i)
      v += 0.5 * static_cast<double>(out[i]) * out[i];
    return v;
  };
  const double before = objective(layer);
  // Gradient of 0.5*||out||^2 wrt out is out itself.
  const Tensor out = layer.forward(input);
  layer.backward(out);
  layer.apply_gradients(0.01f);
  const double after = objective(layer);
  EXPECT_LT(after, before);
}

TEST(GradientCheck, Conv2DParameterStepDecreasesLoss) {
  Rng rng(112);
  Conv2D layer(2, 2, 3, 1, 1, rng);
  const Tensor input = random_tensor({2, 2, 6, 6}, rng);
  const Tensor out0 = layer.forward(input);
  double before = 0.0;
  for (std::size_t i = 0; i < out0.size(); ++i)
    before += 0.5 * static_cast<double>(out0[i]) * out0[i];
  layer.backward(out0);
  layer.apply_gradients(0.005f);
  const Tensor out1 = layer.forward(input);
  double after = 0.0;
  for (std::size_t i = 0; i < out1.size(); ++i)
    after += 0.5 * static_cast<double>(out1[i]) * out1[i];
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace cea::nn
