#include "nn/layers.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cea::nn {
namespace {

TEST(Dense, OutputShape) {
  Rng rng(1);
  Dense layer(4, 3, rng);
  Tensor in({2, 4});
  const Tensor out = layer.forward(in);
  EXPECT_EQ(out.dim(0), 2u);
  EXPECT_EQ(out.dim(1), 3u);
  EXPECT_EQ(layer.parameter_count(), 4u * 3u + 3u);
}

TEST(Dense, ZeroInputGivesBias) {
  Rng rng(2);
  Dense layer(3, 2, rng);
  Tensor in({1, 3});
  const Tensor out = layer.forward(in);
  // Bias starts at zero, so output must be zero.
  EXPECT_EQ(out.at(0, 0), 0.0f);
  EXPECT_EQ(out.at(0, 1), 0.0f);
}

TEST(Dense, LinearInInput) {
  Rng rng(3);
  Dense layer(2, 1, rng);
  Tensor a({1, 2});
  a.at(0, 0) = 1.0f;
  Tensor b({1, 2});
  b.at(0, 1) = 1.0f;
  Tensor ab({1, 2});
  ab.at(0, 0) = 1.0f;
  ab.at(0, 1) = 1.0f;
  const float fa = layer.forward(a).at(0, 0);
  const float fb = layer.forward(b).at(0, 0);
  const float fab = layer.forward(ab).at(0, 0);
  EXPECT_NEAR(fab, fa + fb, 1e-5f);
}

TEST(ReLU, ClampsNegatives) {
  ReLU relu;
  Tensor in({1, 4});
  in[0] = -1.0f; in[1] = 2.0f; in[2] = 0.0f; in[3] = -0.5f;
  const Tensor out = relu.forward(in);
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[1], 2.0f);
  EXPECT_EQ(out[2], 0.0f);
  EXPECT_EQ(out[3], 0.0f);
}

TEST(ReLU, BackwardMasks) {
  ReLU relu;
  Tensor in({1, 2});
  in[0] = -1.0f; in[1] = 3.0f;
  relu.forward(in);
  Tensor grad({1, 2});
  grad[0] = 5.0f; grad[1] = 7.0f;
  const Tensor gin = relu.backward(grad);
  EXPECT_EQ(gin[0], 0.0f);
  EXPECT_EQ(gin[1], 7.0f);
}

TEST(Conv2D, OutputShapeWithPadding) {
  Rng rng(4);
  Conv2D conv(1, 2, 3, 1, 1, rng);
  Tensor in({1, 1, 8, 8});
  const Tensor out = conv.forward(in);
  EXPECT_EQ(out.dim(1), 2u);
  EXPECT_EQ(out.dim(2), 8u);
  EXPECT_EQ(out.dim(3), 8u);
}

TEST(Conv2D, OutputShapeWithStride) {
  Rng rng(5);
  Conv2D conv(3, 4, 3, 2, 1, rng);
  Tensor in({2, 3, 32, 32});
  const Tensor out = conv.forward(in);
  EXPECT_EQ(out.dim(0), 2u);
  EXPECT_EQ(out.dim(1), 4u);
  EXPECT_EQ(out.dim(2), 16u);
  EXPECT_EQ(out.dim(3), 16u);
}

TEST(Conv2D, IdentityKernelReproducesInput) {
  Rng rng(6);
  Conv2D conv(1, 1, 1, 1, 0, rng);
  // A 1x1 conv is a scalar multiply; check linear response.
  Tensor in({1, 1, 3, 3});
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<float>(i);
  const Tensor out = conv.forward(in);
  // All outputs must be input * w where w is the single weight.
  const float w = in[1] != 0.0f ? out[1] / in[1] : 0.0f;
  for (std::size_t i = 1; i < in.size(); ++i)
    EXPECT_NEAR(out[i], in[i] * w, 1e-5f);
}

TEST(Conv2D, ParameterCount) {
  Rng rng(7);
  Conv2D conv(3, 8, 5, 1, 2, rng);
  EXPECT_EQ(conv.parameter_count(), 8u * 3u * 5u * 5u + 8u);
}

TEST(DepthwiseConv2D, KeepsChannelCount) {
  Rng rng(8);
  DepthwiseConv2D conv(4, 3, 1, 1, rng);
  Tensor in({1, 4, 6, 6});
  const Tensor out = conv.forward(in);
  EXPECT_EQ(out.dim(1), 4u);
  EXPECT_EQ(out.dim(2), 6u);
  EXPECT_EQ(conv.parameter_count(), 4u * 9u + 4u);
}

TEST(DepthwiseConv2D, ChannelsIndependent) {
  Rng rng(9);
  DepthwiseConv2D conv(2, 3, 1, 1, rng);
  Tensor a({1, 2, 4, 4});
  a.at(0, 0, 2, 2) = 1.0f;  // excite channel 0 only
  const Tensor out = conv.forward(a);
  // Channel 1 output must be all-bias (zero, bias starts 0).
  for (std::size_t y = 0; y < 4; ++y)
    for (std::size_t x = 0; x < 4; ++x)
      EXPECT_EQ(out.at(0, 1, y, x), 0.0f);
}

TEST(MaxPool2D, PicksWindowMaximum) {
  MaxPool2D pool(2);
  Tensor in({1, 1, 2, 2});
  in.at(0, 0, 0, 0) = 1.0f;
  in.at(0, 0, 0, 1) = 4.0f;
  in.at(0, 0, 1, 0) = -2.0f;
  in.at(0, 0, 1, 1) = 0.5f;
  const Tensor out = pool.forward(in);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 4.0f);
}

TEST(MaxPool2D, BackwardRoutesToArgmax) {
  MaxPool2D pool(2);
  Tensor in({1, 1, 2, 2});
  in.at(0, 0, 1, 0) = 9.0f;
  pool.forward(in);
  Tensor grad({1, 1, 1, 1});
  grad[0] = 3.0f;
  const Tensor gin = pool.backward(grad);
  EXPECT_EQ(gin.at(0, 0, 1, 0), 3.0f);
  EXPECT_EQ(gin.at(0, 0, 0, 0), 0.0f);
}

TEST(GlobalAvgPool, Averages) {
  GlobalAvgPool pool;
  Tensor in({1, 2, 2, 2});
  for (std::size_t i = 0; i < 4; ++i) in[i] = 2.0f;       // channel 0
  for (std::size_t i = 4; i < 8; ++i) in[i] = 6.0f;       // channel 1
  const Tensor out = pool.forward(in);
  EXPECT_EQ(out.rank(), 2u);
  EXPECT_NEAR(out.at(0, 0), 2.0f, 1e-6f);
  EXPECT_NEAR(out.at(0, 1), 6.0f, 1e-6f);
}

TEST(GlobalAvgPool, BackwardSpreadsUniformly) {
  GlobalAvgPool pool;
  Tensor in({1, 1, 2, 2});
  pool.forward(in);
  Tensor grad({1, 1});
  grad[0] = 4.0f;
  const Tensor gin = pool.backward(grad);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(gin[i], 1.0f, 1e-6f);
}

TEST(Flatten, RoundTrips) {
  Flatten flatten;
  Tensor in({2, 3, 4, 5});
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<float>(i);
  const Tensor out = flatten.forward(in);
  EXPECT_EQ(out.rank(), 2u);
  EXPECT_EQ(out.dim(1), 60u);
  const Tensor back = flatten.backward(out);
  EXPECT_EQ(back.shape(), in.shape());
  for (std::size_t i = 0; i < in.size(); ++i) EXPECT_EQ(back[i], in[i]);
}

}  // namespace
}  // namespace cea::nn
