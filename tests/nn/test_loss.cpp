#include "nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/model.h"

namespace cea::nn {
namespace {

TEST(CrossEntropy, UniformLogitsGiveLogN) {
  Tensor logits({1, 4});  // all-zero logits -> uniform softmax
  const std::vector<std::size_t> labels = {2};
  const auto result = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(result.loss, std::log(4.0), 1e-5);
}

TEST(CrossEntropy, ConfidentCorrectIsNearZero) {
  Tensor logits({1, 3});
  logits.at(0, 1) = 30.0f;
  const std::vector<std::size_t> labels = {1};
  const auto result = softmax_cross_entropy(logits, labels);
  EXPECT_LT(result.loss, 1e-4);
}

TEST(CrossEntropy, ConfidentWrongIsLarge) {
  Tensor logits({1, 3});
  logits.at(0, 0) = 30.0f;
  const std::vector<std::size_t> labels = {1};
  const auto result = softmax_cross_entropy(logits, labels);
  EXPECT_GT(result.loss, 10.0);
}

TEST(CrossEntropy, GradientIsSoftmaxMinusOnehotOverBatch) {
  Tensor logits({2, 3});
  logits.at(0, 0) = 1.0f;
  logits.at(1, 2) = -0.5f;
  const std::vector<std::size_t> labels = {0, 2};
  const auto result = softmax_cross_entropy(logits, labels);
  const Tensor probs = softmax(logits);
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t c = 0; c < 3; ++c) {
      const float target = (c == labels[b]) ? 1.0f : 0.0f;
      EXPECT_NEAR(result.grad_logits.at(b, c),
                  (probs.at(b, c) - target) / 2.0f, 1e-6f);
    }
  }
}

TEST(CrossEntropy, GradientSumsToZeroPerRow) {
  Tensor logits({1, 5});
  for (std::size_t c = 0; c < 5; ++c)
    logits.at(0, c) = static_cast<float>(c) * 0.3f;
  const std::vector<std::size_t> labels = {3};
  const auto result = softmax_cross_entropy(logits, labels);
  float total = 0.0f;
  for (std::size_t c = 0; c < 5; ++c) total += result.grad_logits.at(0, c);
  EXPECT_NEAR(total, 0.0f, 1e-6f);
}

TEST(SquaredLoss, PerfectPredictionIsZero) {
  Tensor probs({1, 3});
  probs.at(0, 1) = 1.0f;
  const std::vector<std::size_t> labels = {1};
  const auto losses = squared_losses(probs, labels);
  EXPECT_NEAR(losses[0], 0.0, 1e-10);
}

TEST(SquaredLoss, WorstCaseIsTwo) {
  // All mass on the wrong class: (1-0)^2 + (0-1)^2 = 2.
  Tensor probs({1, 2});
  probs.at(0, 0) = 1.0f;
  const std::vector<std::size_t> labels = {1};
  const auto losses = squared_losses(probs, labels);
  EXPECT_NEAR(losses[0], 2.0, 1e-10);
}

TEST(SquaredLoss, UniformPrediction) {
  Tensor probs({1, 4});
  for (std::size_t c = 0; c < 4; ++c) probs.at(0, c) = 0.25f;
  const std::vector<std::size_t> labels = {0};
  // (0.25-1)^2 + 3*(0.25)^2 = 0.5625 + 0.1875 = 0.75.
  const auto losses = squared_losses(probs, labels);
  EXPECT_NEAR(losses[0], 0.75, 1e-6);
}

TEST(SquaredLoss, BatchedIndependently) {
  Tensor probs({2, 2});
  probs.at(0, 0) = 1.0f;            // correct for label 0
  probs.at(1, 0) = 1.0f;            // wrong for label 1
  const std::vector<std::size_t> labels = {0, 1};
  const auto losses = squared_losses(probs, labels);
  EXPECT_NEAR(losses[0], 0.0, 1e-10);
  EXPECT_NEAR(losses[1], 2.0, 1e-10);
}

TEST(Accuracy, AllCorrect) {
  Tensor logits({2, 2});
  logits.at(0, 0) = 1.0f;
  logits.at(1, 1) = 1.0f;
  const std::vector<std::size_t> labels = {0, 1};
  EXPECT_DOUBLE_EQ(accuracy(logits, labels), 1.0);
}

TEST(Accuracy, Half) {
  Tensor logits({2, 2});
  logits.at(0, 0) = 1.0f;
  logits.at(1, 0) = 1.0f;
  const std::vector<std::size_t> labels = {0, 1};
  EXPECT_DOUBLE_EQ(accuracy(logits, labels), 0.5);
}

TEST(Accuracy, EmptyBatch) {
  Tensor logits({0, 2});
  EXPECT_DOUBLE_EQ(accuracy(logits, {}), 0.0);
}

}  // namespace
}  // namespace cea::nn
