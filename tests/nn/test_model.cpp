#include "nn/model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.h"

namespace cea::nn {
namespace {

Sequential tiny_mlp(Rng& rng) {
  Sequential model("tiny");
  model.emplace<Dense>(4, 8, rng);
  model.emplace<ReLU>();
  model.emplace<Dense>(8, 3, rng);
  return model;
}

TEST(Sequential, ForwardShape) {
  Rng rng(1);
  auto model = tiny_mlp(rng);
  Tensor in({5, 4});
  const Tensor out = model.forward(in);
  EXPECT_EQ(out.dim(0), 5u);
  EXPECT_EQ(out.dim(1), 3u);
}

TEST(Sequential, ParameterCount) {
  Rng rng(2);
  auto model = tiny_mlp(rng);
  EXPECT_EQ(model.parameter_count(), (4u * 8u + 8u) + (8u * 3u + 3u));
  EXPECT_GT(model.size_mb(), 0.0);
  EXPECT_EQ(model.layer_count(), 3u);
}

TEST(Sequential, NameIsKept) {
  Rng rng(3);
  auto model = tiny_mlp(rng);
  EXPECT_EQ(model.name(), "tiny");
}

TEST(Softmax, RowsSumToOne) {
  Tensor logits({2, 3});
  logits.at(0, 0) = 1.0f; logits.at(0, 1) = 2.0f; logits.at(0, 2) = 3.0f;
  logits.at(1, 0) = -5.0f; logits.at(1, 1) = 0.0f; logits.at(1, 2) = 5.0f;
  const Tensor p = softmax(logits);
  for (std::size_t b = 0; b < 2; ++b) {
    float total = 0.0f;
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_GT(p.at(b, c), 0.0f);
      total += p.at(b, c);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(Softmax, StableForLargeLogits) {
  Tensor logits({1, 2});
  logits.at(0, 0) = 1000.0f;
  logits.at(0, 1) = 999.0f;
  const Tensor p = softmax(logits);
  EXPECT_TRUE(std::isfinite(p.at(0, 0)));
  EXPECT_GT(p.at(0, 0), p.at(0, 1));
}

TEST(Softmax, OrderPreserving) {
  Tensor logits({1, 3});
  logits.at(0, 0) = 0.1f; logits.at(0, 1) = 0.5f; logits.at(0, 2) = -1.0f;
  const Tensor p = softmax(logits);
  EXPECT_GT(p.at(0, 1), p.at(0, 0));
  EXPECT_GT(p.at(0, 0), p.at(0, 2));
}

TEST(Sequential, PredictMatchesArgmaxOfProbs) {
  Rng rng(4);
  auto model = tiny_mlp(rng);
  Tensor in({6, 4});
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = static_cast<float>(rng.normal(0.0, 1.0));
  const auto labels = model.predict(in);
  const Tensor probs = model.predict_proba(in);
  ASSERT_EQ(labels.size(), 6u);
  for (std::size_t b = 0; b < 6; ++b) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < 3; ++c)
      if (probs.at(b, c) > probs.at(b, best)) best = c;
    EXPECT_EQ(labels[b], best);
  }
}

TEST(Sequential, DeterministicForward) {
  Rng rng(5);
  auto model = tiny_mlp(rng);
  Tensor in({1, 4});
  in.at(0, 2) = 1.5f;
  const Tensor a = model.forward(in);
  const Tensor b = model.forward(in);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace cea::nn
