#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/train.h"

namespace cea::nn {
namespace {

Sequential quadratic_probe(std::uint64_t seed) {
  Rng rng(seed);
  Sequential model("probe");
  model.emplace<Dense>(3, 2, rng);
  return model;
}

/// One forward/backward pass of 0.5*||out||^2 accumulating gradients.
double accumulate_quadratic_loss(Sequential& model, const Tensor& input) {
  const Tensor out = model.forward(input);
  double value = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i)
    value += 0.5 * static_cast<double>(out[i]) * out[i];
  model.backward(out);
  return value;
}

Tensor probe_input(std::uint64_t seed) {
  Rng rng(seed);
  Tensor input({4, 3});
  for (std::size_t i = 0; i < input.size(); ++i)
    input[i] = static_cast<float>(rng.normal(0.0, 1.0));
  return input;
}

TEST(SgdOptimizer, MatchesApplyGradients) {
  auto a = quadratic_probe(1);
  auto b = quadratic_probe(1);
  const Tensor input = probe_input(2);
  accumulate_quadratic_loss(a, input);
  accumulate_quadratic_loss(b, input);
  a.apply_gradients(0.05f);
  SgdOptimizer sgd(0.05f);
  sgd.step(b);
  const Tensor out_a = a.forward(input);
  const Tensor out_b = b.forward(input);
  for (std::size_t i = 0; i < out_a.size(); ++i)
    EXPECT_EQ(out_a[i], out_b[i]);
}

TEST(SgdOptimizer, WeightDecayShrinksParameters) {
  auto model = quadratic_probe(3);
  double norm_before = 0.0;
  model.visit_parameters([&](std::span<float> block) {
    for (float v : block) norm_before += v * v;
  });
  // Zero gradients: only decay acts.
  SgdOptimizer sgd(0.1f, /*weight_decay=*/0.5f);
  sgd.step(model);
  double norm_after = 0.0;
  model.visit_parameters([&](std::span<float> block) {
    for (float v : block) norm_after += v * v;
  });
  EXPECT_LT(norm_after, norm_before);
}

TEST(MomentumOptimizer, AcceleratesOnConstantGradient) {
  // With a constant gradient direction momentum takes strictly larger steps
  // than plain SGD after the first update.
  auto sgd_model = quadratic_probe(4);
  auto mom_model = quadratic_probe(4);
  const Tensor input = probe_input(5);
  SgdOptimizer sgd(0.01f);
  MomentumOptimizer momentum(0.01f, 0.9f);
  double sgd_loss = 0.0, mom_loss = 0.0;
  for (int iter = 0; iter < 15; ++iter) {
    sgd_loss = accumulate_quadratic_loss(sgd_model, input);
    sgd.step(sgd_model);
    mom_loss = accumulate_quadratic_loss(mom_model, input);
    momentum.step(mom_model);
  }
  EXPECT_LT(mom_loss, sgd_loss);
}

TEST(AdamOptimizer, ReducesLoss) {
  auto model = quadratic_probe(6);
  const Tensor input = probe_input(7);
  AdamOptimizer adam(0.05f);
  const double before = accumulate_quadratic_loss(model, input);
  adam.step(model);
  for (int iter = 0; iter < 30; ++iter) {
    accumulate_quadratic_loss(model, input);
    adam.step(model);
  }
  const double after = accumulate_quadratic_loss(model, input);
  model.visit_gradients([](std::span<float>, std::span<float> grads) {
    for (auto& g : grads) g = 0.0f;  // discard probe gradients
  });
  EXPECT_LT(after, before * 0.2);
  EXPECT_EQ(adam.steps_taken(), 31u);
}

TEST(Optimizers, GradientsClearedAfterStep) {
  auto model = quadratic_probe(8);
  const Tensor input = probe_input(9);
  accumulate_quadratic_loss(model, input);
  AdamOptimizer adam(0.01f);
  adam.step(model);
  model.visit_gradients([](std::span<float>, std::span<float> grads) {
    for (float g : grads) EXPECT_EQ(g, 0.0f);
  });
}

TEST(TrainWithOptimizer, AdamLearnsBlobs) {
  Rng rng(10);
  Tensor samples({120, 2});
  std::vector<std::size_t> labels(120);
  for (std::size_t i = 0; i < 120; ++i) {
    const std::size_t cls = i % 2;
    samples.at(i, 0) =
        static_cast<float>(rng.normal(cls == 0 ? -2.0 : 2.0, 0.5));
    samples.at(i, 1) = static_cast<float>(rng.normal(0.0, 0.5));
    labels[i] = cls;
  }
  Sequential model("clf");
  model.emplace<Dense>(2, 8, rng);
  model.emplace<ReLU>();
  model.emplace<Dense>(8, 2, rng);
  AdamOptimizer adam(0.01f);
  TrainConfig config;
  config.epochs = 6;
  config.batch_size = 16;
  const auto losses =
      train_with_optimizer(model, adam, samples, labels, config, rng);
  EXPECT_LT(losses.back(), losses.front() * 0.5);
  EXPECT_GT(evaluate(model, samples, labels).accuracy, 0.95);
}

TEST(TrainWithOptimizer, MomentumLearnsBlobs) {
  Rng rng(11);
  Tensor samples({120, 2});
  std::vector<std::size_t> labels(120);
  for (std::size_t i = 0; i < 120; ++i) {
    const std::size_t cls = i % 2;
    samples.at(i, 0) =
        static_cast<float>(rng.normal(cls == 0 ? -1.5 : 1.5, 0.5));
    samples.at(i, 1) = static_cast<float>(rng.normal(0.0, 0.5));
    labels[i] = cls;
  }
  Sequential model("clf");
  model.emplace<Dense>(2, 8, rng);
  model.emplace<ReLU>();
  model.emplace<Dense>(8, 2, rng);
  MomentumOptimizer momentum(0.02f, 0.9f);
  TrainConfig config;
  config.epochs = 6;
  config.batch_size = 16;
  const auto losses =
      train_with_optimizer(model, momentum, samples, labels, config, rng);
  EXPECT_LT(losses.back(), losses.front() * 0.6);
}

}  // namespace
}  // namespace cea::nn
