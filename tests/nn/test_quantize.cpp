#include "nn/quantize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>
#include <vector>

#include "nn/layers.h"
#include "nn/train.h"
#include "nn/zoo.h"

namespace cea::nn {
namespace {

Sequential make_probe(std::uint64_t seed) {
  Rng rng(seed);
  Sequential model("probe");
  model.emplace<Dense>(8, 16, rng);
  model.emplace<ReLU>();
  model.emplace<Dense>(16, 4, rng);
  return model;
}

TEST(Quantize, ReportCountsAllParameters) {
  auto model = make_probe(1);
  const auto report = quantize_model(model, 8);
  EXPECT_EQ(report.parameter_count, model.parameter_count());
  EXPECT_EQ(report.bits, 8u);
}

TEST(Quantize, SizeScalesWithBits) {
  auto model = make_probe(2);
  EXPECT_NEAR(quantized_size_mb(model, 8), model.size_mb() / 4.0, 1e-12);
  EXPECT_NEAR(quantized_size_mb(model, 4), model.size_mb() / 8.0, 1e-12);
  EXPECT_NEAR(quantized_size_mb(model, 16), model.size_mb() / 2.0, 1e-12);
}

TEST(Quantize, EightBitErrorIsSmall) {
  auto model = make_probe(3);
  const auto report = quantize_model(model, 8);
  // Per-block scale = max/127, so error <= scale/2; He-init weights are
  // well below 2 in magnitude.
  EXPECT_LT(report.max_abs_error, 0.01);
  EXPECT_LT(report.mean_abs_error, report.max_abs_error + 1e-12);
}

TEST(Quantize, LowerBitsMoreError) {
  auto a = make_probe(4);
  auto b = make_probe(4);  // identical init
  const auto r8 = quantize_model(a, 8);
  const auto r3 = quantize_model(b, 3);
  EXPECT_GT(r3.max_abs_error, r8.max_abs_error);
}

TEST(Quantize, ValuesLandOnGrid) {
  auto model = make_probe(5);
  quantize_model(model, 4);
  // 4-bit symmetric grid: at most 2*(2^3-1)+1 = 15 distinct values per
  // quantization unit. Weight matrices quantize per OUTPUT CHANNEL (each
  // row its own grid); biases and other blocks per block.
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    Layer& layer = model.layer(i);
    const std::size_t channels = layer.output_channels();
    std::size_t block_index = 0;
    layer.visit_parameters([&](std::span<float> block) {
      const bool weight_matrix = block_index++ == 0 && channels > 0 &&
                                 block.size() > channels &&
                                 block.size() % channels == 0;
      if (weight_matrix) {
        const std::size_t per_channel = block.size() / channels;
        for (std::size_t c = 0; c < channels; ++c) {
          std::set<float> distinct(block.begin() + c * per_channel,
                                   block.begin() + (c + 1) * per_channel);
          EXPECT_LE(distinct.size(), 15u) << "layer " << i << " channel " << c;
        }
      } else {
        std::set<float> distinct(block.begin(), block.end());
        EXPECT_LE(distinct.size(), 15u) << "layer " << i;
      }
    });
  }
}

TEST(Quantize, PerChannelGridsBeatPerBlock) {
  // The point of per-channel scales: a channel with small weights keeps a
  // fine grid even when a sibling channel holds a large outlier. With one
  // per-block scale the small channel would collapse to zero at 4 bits.
  const std::size_t channels = 2, per = 8;
  std::vector<float> w(channels * per, 0.01f);
  w[per] = 10.0f;  // channel 1 outlier
  const std::vector<float> scales = per_channel_scales(w.data(), channels,
                                                       per, 4);
  ASSERT_EQ(scales.size(), channels);
  EXPECT_FLOAT_EQ(scales[0], 0.01f / 7.0f);
  EXPECT_FLOAT_EQ(scales[1], 10.0f / 7.0f);
}

TEST(Quantize, RejectsBitsOutsideSupportedRange) {
  auto model = make_probe(12);
  EXPECT_THROW(quantize_model(model, 1), std::invalid_argument);
  EXPECT_THROW(quantize_model(model, 0), std::invalid_argument);
  EXPECT_THROW(quantize_model(model, 17), std::invalid_argument);
  EXPECT_THROW(quantize_model(model, 32), std::invalid_argument);
  try {
    quantize_model(model, 17);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "quantize_model: bits must be in [2, 16], got 17");
  }
  // Boundary values are accepted.
  EXPECT_NO_THROW(quantize_model(model, 2));
  EXPECT_NO_THROW(quantize_model(model, 16));
}

TEST(Quantize, Idempotent) {
  auto model = make_probe(6);
  quantize_model(model, 6);
  std::vector<float> first;
  model.visit_parameters([&](std::span<float> block) {
    first.insert(first.end(), block.begin(), block.end());
  });
  const auto second_report = quantize_model(model, 6);
  std::vector<float> second;
  model.visit_parameters([&](std::span<float> block) {
    second.insert(second.end(), block.begin(), block.end());
  });
  EXPECT_EQ(first, second);
  EXPECT_NEAR(second_report.max_abs_error, 0.0, 1e-12);
}

TEST(Quantize, ReportsSizeBeforeAndAfter) {
  auto model = make_probe(8);
  const auto report = quantize_model(model, 8);
  EXPECT_NEAR(report.size_mb_before, model.size_mb(), 1e-12);
  EXPECT_NEAR(report.size_mb, model.size_mb() / 4.0, 1e-12);
  EXPECT_EQ(report.skipped_non_finite, 0u);
}

TEST(Quantize, SkipsNonFiniteParameters) {
  auto model = make_probe(9);
  // Poison a few parameters the way a diverged training run would.
  std::size_t poisoned = 0;
  model.visit_parameters([&](std::span<float> block) {
    if (block.size() < 4 || poisoned >= 3) return;
    block[0] = std::numeric_limits<float>::quiet_NaN();
    block[1] = std::numeric_limits<float>::infinity();
    block[2] = -std::numeric_limits<float>::infinity();
    poisoned += 3;
  });
  ASSERT_EQ(poisoned, 3u);
  const auto report = quantize_model(model, 8);
  EXPECT_EQ(report.skipped_non_finite, 3u);
  // The error stats must come from finite values only.
  EXPECT_TRUE(std::isfinite(report.max_abs_error));
  EXPECT_TRUE(std::isfinite(report.mean_abs_error));
  EXPECT_LT(report.max_abs_error, 0.01);
  // Finite values must still land on a sane grid: an inf-poisoned scale
  // would have collapsed them all to zero.
  std::size_t nonzero_finite = 0;
  model.visit_parameters([&](std::span<float> block) {
    for (float v : block)
      if (std::isfinite(v) && v != 0.0f) ++nonzero_finite;
  });
  EXPECT_GT(nonzero_finite, 0u);
}

TEST(Quantize, AllNonFiniteBlockIsLeftAlone) {
  auto model = make_probe(10);
  std::size_t total = 0;
  model.visit_parameters([&](std::span<float> block) {
    for (auto& v : block) v = std::numeric_limits<float>::infinity();
    total += block.size();
  });
  const auto report = quantize_model(model, 8);
  EXPECT_EQ(report.skipped_non_finite, total);
  EXPECT_EQ(report.max_abs_error, 0.0);
  EXPECT_EQ(report.mean_abs_error, 0.0);
}

TEST(Quantize, QuantizedForwardStaysConsistent) {
  // Post-quantization forward consistency through the default (GEMM)
  // inference path: logits move by at most a small tolerance and the
  // argmax ranking is essentially preserved.
  Rng rng(11);
  Sequential model = make_simple_cnn("q-cnn", mnist_spec(), 8, 16, rng);
  Tensor batch({4, 1, 28, 28});
  for (auto& v : batch.data()) v = static_cast<float>(rng.uniform());
  model.set_training(false);
  const Tensor before = model.forward(batch);
  const auto report = quantize_model(model, 8);
  EXPECT_EQ(report.skipped_non_finite, 0u);
  const Tensor after = model.forward(batch);
  ASSERT_EQ(before.shape(), after.shape());
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_NEAR(before[i], after[i], 0.15f) << "logit " << i;
}

TEST(Quantize, EightBitPreservesTrainedAccuracy) {
  // Train a separable classifier, quantize, and verify accuracy barely
  // moves — the property the carbon-aware quantization extension relies on.
  Rng rng(7);
  Tensor samples({200, 2});
  std::vector<std::size_t> labels(200);
  for (std::size_t i = 0; i < 200; ++i) {
    const std::size_t cls = i % 2;
    samples.at(i, 0) =
        static_cast<float>(rng.normal(cls == 0 ? -2.0 : 2.0, 0.5));
    samples.at(i, 1) = static_cast<float>(rng.normal(0.0, 0.5));
    labels[i] = cls;
  }
  Sequential model("clf");
  model.emplace<Dense>(2, 8, rng);
  model.emplace<ReLU>();
  model.emplace<Dense>(8, 2, rng);
  TrainConfig config;
  config.epochs = 6;
  train_sgd(model, samples, labels, config, rng);
  const double before = evaluate(model, samples, labels).accuracy;
  quantize_model(model, 8);
  const double after = evaluate(model, samples, labels).accuracy;
  EXPECT_GT(before, 0.95);
  EXPECT_GT(after, before - 0.02);
}

}  // namespace
}  // namespace cea::nn
