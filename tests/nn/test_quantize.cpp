#include "nn/quantize.h"

#include <gtest/gtest.h>

#include <set>

#include "nn/layers.h"
#include "nn/train.h"
#include "nn/zoo.h"

namespace cea::nn {
namespace {

Sequential make_probe(std::uint64_t seed) {
  Rng rng(seed);
  Sequential model("probe");
  model.emplace<Dense>(8, 16, rng);
  model.emplace<ReLU>();
  model.emplace<Dense>(16, 4, rng);
  return model;
}

TEST(Quantize, ReportCountsAllParameters) {
  auto model = make_probe(1);
  const auto report = quantize_model(model, 8);
  EXPECT_EQ(report.parameter_count, model.parameter_count());
  EXPECT_EQ(report.bits, 8u);
}

TEST(Quantize, SizeScalesWithBits) {
  auto model = make_probe(2);
  EXPECT_NEAR(quantized_size_mb(model, 8), model.size_mb() / 4.0, 1e-12);
  EXPECT_NEAR(quantized_size_mb(model, 4), model.size_mb() / 8.0, 1e-12);
  EXPECT_NEAR(quantized_size_mb(model, 16), model.size_mb() / 2.0, 1e-12);
}

TEST(Quantize, EightBitErrorIsSmall) {
  auto model = make_probe(3);
  const auto report = quantize_model(model, 8);
  // Per-block scale = max/127, so error <= scale/2; He-init weights are
  // well below 2 in magnitude.
  EXPECT_LT(report.max_abs_error, 0.01);
  EXPECT_LT(report.mean_abs_error, report.max_abs_error + 1e-12);
}

TEST(Quantize, LowerBitsMoreError) {
  auto a = make_probe(4);
  auto b = make_probe(4);  // identical init
  const auto r8 = quantize_model(a, 8);
  const auto r3 = quantize_model(b, 3);
  EXPECT_GT(r3.max_abs_error, r8.max_abs_error);
}

TEST(Quantize, ValuesLandOnGrid) {
  auto model = make_probe(5);
  quantize_model(model, 4);
  // 4-bit symmetric grid: at most 2*(2^3-1)+1 = 15 distinct values per
  // block.
  model.visit_parameters([](std::span<float> block) {
    std::set<float> distinct(block.begin(), block.end());
    EXPECT_LE(distinct.size(), 15u);
  });
}

TEST(Quantize, Idempotent) {
  auto model = make_probe(6);
  quantize_model(model, 6);
  std::vector<float> first;
  model.visit_parameters([&](std::span<float> block) {
    first.insert(first.end(), block.begin(), block.end());
  });
  const auto second_report = quantize_model(model, 6);
  std::vector<float> second;
  model.visit_parameters([&](std::span<float> block) {
    second.insert(second.end(), block.begin(), block.end());
  });
  EXPECT_EQ(first, second);
  EXPECT_NEAR(second_report.max_abs_error, 0.0, 1e-12);
}

TEST(Quantize, EightBitPreservesTrainedAccuracy) {
  // Train a separable classifier, quantize, and verify accuracy barely
  // moves — the property the carbon-aware quantization extension relies on.
  Rng rng(7);
  Tensor samples({200, 2});
  std::vector<std::size_t> labels(200);
  for (std::size_t i = 0; i < 200; ++i) {
    const std::size_t cls = i % 2;
    samples.at(i, 0) =
        static_cast<float>(rng.normal(cls == 0 ? -2.0 : 2.0, 0.5));
    samples.at(i, 1) = static_cast<float>(rng.normal(0.0, 0.5));
    labels[i] = cls;
  }
  Sequential model("clf");
  model.emplace<Dense>(2, 8, rng);
  model.emplace<ReLU>();
  model.emplace<Dense>(8, 2, rng);
  TrainConfig config;
  config.epochs = 6;
  train_sgd(model, samples, labels, config, rng);
  const double before = evaluate(model, samples, labels).accuracy;
  quantize_model(model, 8);
  const double after = evaluate(model, samples, labels).accuracy;
  EXPECT_GT(before, 0.95);
  EXPECT_GT(after, before - 0.02);
}

}  // namespace
}  // namespace cea::nn
