#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>

#include "nn/layers.h"
#include "nn/zoo.h"

namespace cea::nn {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "cea_model_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

Sequential make_probe(std::uint64_t seed) {
  Rng rng(seed);
  Sequential model("probe");
  model.emplace<Dense>(6, 8, rng);
  model.emplace<ReLU>();
  model.emplace<Dense>(8, 3, rng);
  return model;
}

TEST_F(SerializeTest, RoundTripReproducesOutputs) {
  auto original = make_probe(1);
  Tensor input({2, 6});
  Rng in_rng(9);
  for (std::size_t i = 0; i < input.size(); ++i)
    input[i] = static_cast<float>(in_rng.normal(0.0, 1.0));
  const Tensor before = original.forward(input);

  save_model(original, path_);
  auto restored = make_probe(999);  // different init, same structure
  load_model(restored, path_);
  const Tensor after = restored.forward(input);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(after[i], before[i]);
}

TEST_F(SerializeTest, RoundTripConvolutionalZooModel) {
  Rng rng(2);
  auto model = make_lenet5("lenet", mnist_spec(), 0.5, rng);
  save_model(model, path_);
  Rng rng2(77);
  auto restored = make_lenet5("lenet", mnist_spec(), 0.5, rng2);
  load_model(restored, path_);
  Tensor input({1, 1, 28, 28});
  input.fill(0.25f);
  const Tensor a = model.forward(input);
  const Tensor b = restored.forward(input);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_F(SerializeTest, RejectsParameterCountMismatch) {
  auto original = make_probe(3);
  save_model(original, path_);
  Rng rng(4);
  Sequential different("other");
  different.emplace<Dense>(6, 4, rng);  // smaller
  EXPECT_THROW(load_model(different, path_), std::runtime_error);
}

TEST_F(SerializeTest, RejectsGarbageFile) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "not a checkpoint";
  }
  auto model = make_probe(5);
  EXPECT_THROW(load_model(model, path_), std::runtime_error);
}

TEST_F(SerializeTest, RejectsMissingFile) {
  auto model = make_probe(6);
  EXPECT_THROW(load_model(model, "/nonexistent/xyz.bin"),
               std::runtime_error);
  EXPECT_THROW(save_model(model, "/nonexistent/xyz.bin"),
               std::runtime_error);
}

TEST_F(SerializeTest, RejectsTruncatedPayload) {
  auto original = make_probe(7);
  save_model(original, path_);
  // Truncate the file to cut into the payload.
  std::ifstream in(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  auto model = make_probe(8);
  EXPECT_THROW(load_model(model, path_), std::runtime_error);
}

}  // namespace
}  // namespace cea::nn
