#include "nn/tensor.h"

#include <gtest/gtest.h>

namespace cea::nn {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.rank(), 0u);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ShapeAccessors) {
  Tensor t({4, 3, 8, 8});
  EXPECT_EQ(t.rank(), 4u);
  EXPECT_EQ(t.dim(0), 4u);
  EXPECT_EQ(t.dim(3), 8u);
  EXPECT_EQ(t.size(), 4u * 3u * 8u * 8u);
}

TEST(Tensor, TwoDimAccessorRowMajor) {
  Tensor t({2, 3});
  t.at(1, 2) = 5.0f;
  EXPECT_EQ(t[1 * 3 + 2], 5.0f);
  EXPECT_EQ(t.at(1, 2), 5.0f);
}

TEST(Tensor, FourDimAccessorLayout) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0f;
  const std::size_t expected = ((1 * 3 + 2) * 4 + 3) * 5 + 4;
  EXPECT_EQ(t[expected], 9.0f);
}

TEST(Tensor, FillSetsEveryElement) {
  Tensor t({3, 3});
  t.fill(2.5f);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(i);
  const Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.rank(), 2u);
  EXPECT_EQ(r.dim(0), 3u);
  for (std::size_t i = 0; i < r.size(); ++i)
    EXPECT_EQ(r[i], static_cast<float>(i));
}

TEST(Tensor, CopyIsDeep) {
  Tensor a({2, 2});
  Tensor b = a;
  b[0] = 7.0f;
  EXPECT_EQ(a[0], 0.0f);
}

TEST(Tensor, ShapeString) {
  Tensor t({2, 3, 28, 28});
  EXPECT_EQ(t.shape_string(), "(2, 3, 28, 28)");
}

TEST(Tensor, ShapeSizeHelper) {
  EXPECT_EQ(Tensor::shape_size({2, 3, 4}), 24u);
  EXPECT_EQ(Tensor::shape_size({}), 0u);
}

}  // namespace
}  // namespace cea::nn
