#include "nn/tensor.h"

#include <gtest/gtest.h>

namespace cea::nn {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.rank(), 0u);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ShapeAccessors) {
  Tensor t({4, 3, 8, 8});
  EXPECT_EQ(t.rank(), 4u);
  EXPECT_EQ(t.dim(0), 4u);
  EXPECT_EQ(t.dim(3), 8u);
  EXPECT_EQ(t.size(), 4u * 3u * 8u * 8u);
}

TEST(Tensor, TwoDimAccessorRowMajor) {
  Tensor t({2, 3});
  t.at(1, 2) = 5.0f;
  EXPECT_EQ(t[1 * 3 + 2], 5.0f);
  EXPECT_EQ(t.at(1, 2), 5.0f);
}

TEST(Tensor, FourDimAccessorLayout) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0f;
  const std::size_t expected = ((1 * 3 + 2) * 4 + 3) * 5 + 4;
  EXPECT_EQ(t[expected], 9.0f);
}

TEST(Tensor, FillSetsEveryElement) {
  Tensor t({3, 3});
  t.fill(2.5f);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(i);
  const Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.rank(), 2u);
  EXPECT_EQ(r.dim(0), 3u);
  for (std::size_t i = 0; i < r.size(); ++i)
    EXPECT_EQ(r[i], static_cast<float>(i));
}

TEST(Tensor, CopyIsDeep) {
  Tensor a({2, 2});
  Tensor b = a;
  b[0] = 7.0f;
  EXPECT_EQ(a[0], 0.0f);
}

TEST(Tensor, ShapeString) {
  Tensor t({2, 3, 28, 28});
  EXPECT_EQ(t.shape_string(), "(2, 3, 28, 28)");
}

TEST(Tensor, ShapeSizeHelper) {
  EXPECT_EQ(Tensor::shape_size({2, 3, 4}), 24u);
  EXPECT_EQ(Tensor::shape_size({}), 0u);
}

TEST(TensorDeathTest, ReshapedRejectsElementCountMismatch) {
  // reshaped() checks in every build type (fprintf + abort), unlike the
  // assert-based accessor guards below.
  Tensor t({2, 6});
  EXPECT_DEATH((void)t.reshaped({5, 5}), "12");
  EXPECT_DEATH((void)t.reshaped({}), "0");
}

#ifndef NDEBUG

TEST(TensorDeathTest, FlatIndexOutOfRangeAsserts) {
  Tensor t({2, 3});
  EXPECT_DEATH((void)t[6], "");
  const Tensor& ct = t;
  EXPECT_DEATH((void)ct[100], "");
}

TEST(TensorDeathTest, TwoDimAccessorAsserts) {
  Tensor t({2, 3});
  EXPECT_DEATH((void)t.at(2, 0), "");   // batch out of range
  EXPECT_DEATH((void)t.at(0, 3), "");   // feature out of range
  Tensor wrong_rank({2, 3, 4, 5});
  EXPECT_DEATH((void)wrong_rank.at(0, 0), "");  // 2-D accessor on 4-D
}

TEST(TensorDeathTest, FourDimAccessorAsserts) {
  Tensor t({2, 3, 4, 5});
  EXPECT_DEATH((void)t.at(2, 0, 0, 0), "");
  EXPECT_DEATH((void)t.at(0, 0, 0, 5), "");
  Tensor flat({6});
  EXPECT_DEATH((void)flat.at(0, 0, 0, 0), "");  // 4-D accessor on 1-D
}

#else

TEST(TensorDeathTest, AccessorGuardsCompiledOut) {
  GTEST_SKIP() << "accessor asserts are compiled out under NDEBUG; "
                  "reshaped() is still covered above";
}

#endif  // NDEBUG

}  // namespace
}  // namespace cea::nn
