#include "nn/train.h"

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/loss.h"

namespace cea::nn {
namespace {

/// Linearly separable 2-D two-class blobs.
void make_blobs(std::size_t per_class, Tensor& samples,
                std::vector<std::size_t>& labels, Rng& rng) {
  samples = Tensor({2 * per_class, 2});
  labels.assign(2 * per_class, 0);
  for (std::size_t i = 0; i < 2 * per_class; ++i) {
    const std::size_t cls = i % 2;
    const double cx = cls == 0 ? -2.0 : 2.0;
    samples.at(i, 0) = static_cast<float>(rng.normal(cx, 0.6));
    samples.at(i, 1) = static_cast<float>(rng.normal(cls == 0 ? 1.0 : -1.0, 0.6));
    labels[i] = cls;
  }
}

TEST(GatherRows, CopiesSelectedRows) {
  Tensor samples({3, 2});
  for (std::size_t i = 0; i < samples.size(); ++i)
    samples[i] = static_cast<float>(i);
  const std::vector<std::size_t> idx = {2, 0};
  const Tensor out = gather_rows(samples, idx);
  EXPECT_EQ(out.dim(0), 2u);
  EXPECT_EQ(out.at(0, 0), 4.0f);
  EXPECT_EQ(out.at(0, 1), 5.0f);
  EXPECT_EQ(out.at(1, 0), 0.0f);
}

TEST(GatherLabels, Selects) {
  const std::vector<std::size_t> labels = {9, 8, 7};
  const std::vector<std::size_t> idx = {1, 1, 2};
  const auto out = gather_labels(labels, idx);
  EXPECT_EQ(out, (std::vector<std::size_t>{8, 8, 7}));
}

TEST(TrainSgd, LossDecreasesOnSeparableData) {
  Rng rng(42);
  Tensor samples;
  std::vector<std::size_t> labels;
  make_blobs(100, samples, labels, rng);

  Sequential model("clf");
  model.emplace<Dense>(2, 16, rng);
  model.emplace<ReLU>();
  model.emplace<Dense>(16, 2, rng);

  TrainConfig config;
  config.epochs = 8;
  config.batch_size = 16;
  config.learning_rate = 0.1f;
  const auto losses = train_sgd(model, samples, labels, config, rng);
  ASSERT_EQ(losses.size(), 8u);
  EXPECT_LT(losses.back(), losses.front() * 0.5);
}

TEST(TrainSgd, ReachesHighAccuracyOnSeparableData) {
  Rng rng(43);
  Tensor samples;
  std::vector<std::size_t> labels;
  make_blobs(150, samples, labels, rng);

  Sequential model("clf");
  model.emplace<Dense>(2, 16, rng);
  model.emplace<ReLU>();
  model.emplace<Dense>(16, 2, rng);

  TrainConfig config;
  config.epochs = 10;
  config.batch_size = 16;
  config.learning_rate = 0.1f;
  train_sgd(model, samples, labels, config, rng);

  Tensor test_samples;
  std::vector<std::size_t> test_labels;
  make_blobs(100, test_samples, test_labels, rng);
  const auto eval = evaluate(model, test_samples, test_labels);
  EXPECT_GT(eval.accuracy, 0.95);
}

TEST(Evaluate, EmptySetReturnsZeros) {
  Rng rng(44);
  Sequential model("clf");
  model.emplace<Dense>(2, 2, rng);
  Tensor samples({0, 2});
  const auto eval = evaluate(model, samples, {});
  EXPECT_DOUBLE_EQ(eval.accuracy, 0.0);
  EXPECT_DOUBLE_EQ(eval.cross_entropy, 0.0);
}

TEST(Evaluate, BatchingInvariance) {
  Rng rng(45);
  Tensor samples;
  std::vector<std::size_t> labels;
  make_blobs(37, samples, labels, rng);  // odd size to hit a partial batch
  Sequential model("clf");
  model.emplace<Dense>(2, 4, rng);
  model.emplace<ReLU>();
  model.emplace<Dense>(4, 2, rng);
  const auto a = evaluate(model, samples, labels, 8);
  const auto b = evaluate(model, samples, labels, 1000);
  EXPECT_NEAR(a.accuracy, b.accuracy, 1e-12);
  EXPECT_NEAR(a.cross_entropy, b.cross_entropy, 1e-9);
}

}  // namespace
}  // namespace cea::nn
