#include "nn/zoo.h"

#include <gtest/gtest.h>

#include <set>

namespace cea::nn {
namespace {

TEST(Zoo, MnistZooHasSixDistinctModels) {
  Rng rng(1);
  auto zoo = make_mnist_zoo(rng);
  ASSERT_EQ(zoo.size(), 6u);
  std::set<std::string> names;
  for (const auto& m : zoo) names.insert(m.name());
  EXPECT_EQ(names.size(), 6u);
}

TEST(Zoo, CifarZooHasSixDistinctModels) {
  Rng rng(2);
  auto zoo = make_cifar_zoo(rng);
  ASSERT_EQ(zoo.size(), 6u);
  std::set<std::string> names;
  for (const auto& m : zoo) names.insert(m.name());
  EXPECT_EQ(names.size(), 6u);
}

TEST(Zoo, MnistModelsForwardCorrectShape) {
  Rng rng(3);
  auto zoo = make_mnist_zoo(rng);
  Tensor input({2, 1, 28, 28});
  for (auto& model : zoo) {
    const Tensor out = model.forward(input);
    EXPECT_EQ(out.dim(0), 2u) << model.name();
    EXPECT_EQ(out.dim(1), 10u) << model.name();
  }
}

TEST(Zoo, CifarModelsForwardCorrectShape) {
  Rng rng(4);
  auto zoo = make_cifar_zoo(rng);
  Tensor input({2, 3, 32, 32});
  for (auto& model : zoo) {
    const Tensor out = model.forward(input);
    EXPECT_EQ(out.dim(0), 2u) << model.name();
    EXPECT_EQ(out.dim(1), 10u) << model.name();
  }
}

TEST(Zoo, SizesVaryAcrossModels) {
  Rng rng(5);
  auto zoo = make_mnist_zoo(rng);
  std::set<std::size_t> sizes;
  for (const auto& m : zoo) sizes.insert(m.parameter_count());
  EXPECT_GE(sizes.size(), 5u);  // essentially all distinct
}

TEST(Zoo, HalfVariantsAreSmaller) {
  Rng rng(6);
  const InputSpec spec = mnist_spec();
  auto full = make_lenet5("full", spec, 1.0, rng);
  auto half = make_lenet5("half", spec, 0.5, rng);
  EXPECT_LT(half.parameter_count(), full.parameter_count());
}

TEST(Zoo, MobilenetWidthScaling) {
  Rng rng(7);
  const InputSpec spec = cifar_spec();
  auto full = make_mobilenet_lite("w1", spec, 1.0, rng);
  auto half = make_mobilenet_lite("w05", spec, 0.5, rng);
  EXPECT_LT(half.parameter_count(), full.parameter_count());
  Tensor input({1, 3, 32, 32});
  EXPECT_EQ(full.forward(input).dim(1), 10u);
  EXPECT_EQ(half.forward(input).dim(1), 10u);
}

TEST(Zoo, MlpParameterCountExact) {
  Rng rng(8);
  auto mlp = make_mlp("m", mnist_spec(), 64, rng);
  EXPECT_EQ(mlp.parameter_count(), 784u * 64u + 64u + 64u * 10u + 10u);
}

TEST(Zoo, SpecsMatchPaper) {
  EXPECT_EQ(mnist_spec().channels, 1u);
  EXPECT_EQ(mnist_spec().height, 28u);
  EXPECT_EQ(cifar_spec().channels, 3u);
  EXPECT_EQ(cifar_spec().width, 32u);
  EXPECT_EQ(mnist_spec().classes, 10u);
}

}  // namespace
}  // namespace cea::nn
