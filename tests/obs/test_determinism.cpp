// Telemetry is observational only: recording counters, spans and trace
// events must not perturb a single bit of the simulation output — with
// tracing on or off, detail on or off, serial or pooled. These tests are
// the enforcement of that contract (the golden-trace suite then pins the
// values themselves).

#include <gtest/gtest.h>

#include "obs/telemetry.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "util/thread_pool.h"

namespace cea::sim {
namespace {

SimConfig small_config() {
  SimConfig config;
  config.num_edges = 6;
  config.horizon = 50;
  config.workload.num_slots = 50;
  config.workload.mean_samples = 250.0;
  config.loss_draw_cap = 64;
  config.seed = 17;
  return config;
}

void expect_bit_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.inference_cost, b.inference_cost);
  EXPECT_EQ(a.switching_cost, b.switching_cost);
  EXPECT_EQ(a.trading_cost, b.trading_cost);
  EXPECT_EQ(a.emissions, b.emissions);
  EXPECT_EQ(a.buys, b.buys);
  EXPECT_EQ(a.sells, b.sells);
  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.selection_counts, b.selection_counts);
  EXPECT_EQ(a.total_switches, b.total_switches);
}

RunResult run_once(const Environment& env, util::ThreadPool* pool) {
  const auto combo = ours_combo();
  SimOptions options;
  options.pool = pool;
  const Simulator simulator(env, options);
  return simulator.run(combo.policy, combo.trader, /*seed=*/5, combo.name);
}

class TelemetryDeterminism : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::disable_tracing();
    obs::set_detail(false);
    obs::reset();
  }
  void TearDown() override {
    obs::disable_tracing();
    obs::set_detail(false);
    obs::drain_trace();
    obs::reset();
  }
};

TEST_F(TelemetryDeterminism, TracingAndDetailDoNotPerturbSerialRun) {
  const auto env = Environment::make_parametric(small_config());
  const RunResult baseline = run_once(env, nullptr);

  obs::enable_tracing();
  obs::set_detail(true);
  const RunResult traced = run_once(env, nullptr);

  expect_bit_identical(baseline, traced);
  if (obs::compiled_in()) {
    // The traced run must actually have recorded something, otherwise this
    // test proves nothing.
    EXPECT_FALSE(obs::drain_trace().empty());
  }
}

TEST_F(TelemetryDeterminism, TracingAndDetailDoNotPerturbPooledRun) {
  const auto env = Environment::make_parametric(small_config());
  util::ThreadPool pool(3);
  const RunResult baseline = run_once(env, &pool);

  obs::enable_tracing();
  obs::set_detail(true);
  const RunResult traced = run_once(env, &pool);
  expect_bit_identical(baseline, traced);

  // And across engines while traced: pooled == serial, still bit-exact.
  const RunResult serial_traced = run_once(env, nullptr);
  expect_bit_identical(traced, serial_traced);
}

TEST_F(TelemetryDeterminism, SlotPhaseSpansCoverTheSlot) {
  if (!obs::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  const auto env = Environment::make_parametric(small_config());
  // The inner phase spans (decide/reduce/feedback/audit) are detail-gated
  // to keep the idle-telemetry cost under budget; enable detail so the
  // full phase breakdown records, as the --telemetry harness does.
  obs::set_detail(true);
  run_once(env, nullptr);

  const auto snap = obs::snapshot();
  double slot_sum = 0.0;
  double phase_sum = 0.0;
  std::uint64_t slot_count = 0;
  for (const auto& hist : snap.histograms) {
    if (hist.name == "sim.slot") {
      slot_sum = hist.sum;
      slot_count = hist.count;
    } else if (hist.name == "sim.presolve" || hist.name == "sim.edges" ||
               hist.name == "sim.reduce" ||
               hist.name == "sim.trader.decide" ||
               hist.name == "sim.trader.feedback" ||
               hist.name == "sim.audit") {
      phase_sum += hist.sum;
    }
  }
  EXPECT_EQ(slot_count, 50u);  // one span per slot
  EXPECT_GT(slot_sum, 0.0);
  // The named phases must account for the bulk of the slot span; the
  // remainder is loop scaffolding (a few scalar ops per slot).
  EXPECT_GT(phase_sum, 0.5 * slot_sum);
  EXPECT_LE(phase_sum, slot_sum * 1.01);
}

}  // namespace
}  // namespace cea::sim
