#include "obs/journal.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace cea::obs {
namespace {

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

JournalRecord sample_slot_record() {
  JournalRecord record;
  record.kind = JournalRecord::Kind::kSlot;
  record.tenant = "tenant0";
  record.slot = 42;
  record.model_counts = {3, 0, 5};
  record.switches_total = 7;
  record.solver_lanes = 2;
  record.arena_overflows = 0;
  record.trader_dual = 0.1 + 0.2;  // not exactly representable
  record.buy = 1.25;
  record.sell = 0.0;
  record.buy_price = 8.0 + 1.0 / 3.0;
  record.sell_price = 7.5;
  record.emission = 0.7;
  record.balance = 12.5;
  record.carbon_cap = 20.0;
  record.inference_cost = 0.125;
  record.switching_cost = 0.0625;
  record.trading_cost = -0.5;
  record.accuracy = 0.875;
  record.workload = 300.0;
  return record;
}

JournalRecord sample_alert_record() {
  JournalRecord record;
  record.kind = JournalRecord::Kind::kAlert;
  record.tenant = "tenant1";
  record.slot = 9;
  record.alert = "allowance_insolvency";
  record.value = -0.25;
  record.threshold = 0.0;
  return record;
}

// --- record format --------------------------------------------------------

TEST(JournalRecordFormat, SlotRecordRoundTripsBitExactly) {
  const JournalRecord record = sample_slot_record();
  const std::string line = format_record(record);
  const JournalRecord parsed = parse_record(line);
  EXPECT_EQ(parsed.kind, JournalRecord::Kind::kSlot);
  EXPECT_EQ(parsed.tenant, record.tenant);
  EXPECT_EQ(parsed.slot, record.slot);
  EXPECT_EQ(parsed.model_counts, record.model_counts);
  EXPECT_EQ(parsed.switches_total, record.switches_total);
  EXPECT_EQ(parsed.solver_lanes, record.solver_lanes);
  EXPECT_EQ(parsed.arena_overflows, record.arena_overflows);
  EXPECT_TRUE(same_bits(parsed.trader_dual, record.trader_dual));
  EXPECT_TRUE(same_bits(parsed.buy, record.buy));
  EXPECT_TRUE(same_bits(parsed.sell, record.sell));
  EXPECT_TRUE(same_bits(parsed.buy_price, record.buy_price));
  EXPECT_TRUE(same_bits(parsed.sell_price, record.sell_price));
  EXPECT_TRUE(same_bits(parsed.emission, record.emission));
  EXPECT_TRUE(same_bits(parsed.balance, record.balance));
  EXPECT_TRUE(same_bits(parsed.carbon_cap, record.carbon_cap));
  EXPECT_TRUE(same_bits(parsed.inference_cost, record.inference_cost));
  EXPECT_TRUE(same_bits(parsed.switching_cost, record.switching_cost));
  EXPECT_TRUE(same_bits(parsed.trading_cost, record.trading_cost));
  EXPECT_TRUE(same_bits(parsed.accuracy, record.accuracy));
  EXPECT_TRUE(same_bits(parsed.workload, record.workload));
  // Formatting is a pure function of the record.
  EXPECT_EQ(format_record(parsed), line);
}

TEST(JournalRecordFormat, AlertRecordRoundTrips) {
  const JournalRecord record = sample_alert_record();
  const JournalRecord parsed = parse_record(format_record(record));
  EXPECT_EQ(parsed.kind, JournalRecord::Kind::kAlert);
  EXPECT_EQ(parsed.tenant, record.tenant);
  EXPECT_EQ(parsed.slot, record.slot);
  EXPECT_EQ(parsed.alert, record.alert);
  EXPECT_TRUE(same_bits(parsed.value, record.value));
  EXPECT_TRUE(same_bits(parsed.threshold, record.threshold));
}

TEST(JournalRecordFormat, NanDualRoundTrips) {
  // Stateless traders report NaN as their dual; it must survive the trip.
  JournalRecord record = sample_slot_record();
  record.trader_dual = std::numeric_limits<double>::quiet_NaN();
  const JournalRecord parsed = parse_record(format_record(record));
  EXPECT_TRUE(std::isnan(parsed.trader_dual));
}

TEST(JournalRecordFormat, RejectsUnsafeNames) {
  JournalRecord record = sample_slot_record();
  record.tenant = "bad tenant";
  EXPECT_THROW(format_record(record), std::invalid_argument);
  record.tenant = "bad#tenant";
  EXPECT_THROW(format_record(record), std::invalid_argument);
}

TEST(JournalRecordFormat, ParseRejectsTampering) {
  const std::string line = format_record(sample_slot_record());
  // Flip one payload character: the line checksum must catch it.
  std::string tampered = line;
  tampered[6] = (tampered[6] == '0') ? '1' : '0';
  EXPECT_THROW(parse_record(tampered), JournalError);
  // Truncate the checksum field.
  EXPECT_THROW(parse_record(line.substr(0, line.size() - 2)), JournalError);
  // Unknown record kind.
  EXPECT_THROW(parse_record("bogus rest of line #0123456789abcdef"),
               JournalError);
}

// --- writer / reader ------------------------------------------------------

class JournalDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "cea_journal_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ::mkdir(dir_.c_str(), 0755);
  }
  void TearDown() override {
    for (std::size_t i = 0; i < 16; ++i) {
      std::remove(segment_path(dir_, i).c_str());
    }
    std::remove((dir_ + "/not-a-segment.txt").c_str());
    ::rmdir(dir_.c_str());
  }
  std::string dir_;
};

TEST_F(JournalDirTest, SealPublishesVerifiableSegments) {
  JournalWriter writer(dir_);
  writer.append(sample_slot_record());
  writer.append(sample_alert_record());
  EXPECT_EQ(writer.records_buffered(), 2u);
  writer.seal();
  EXPECT_EQ(writer.records_buffered(), 0u);
  EXPECT_EQ(writer.records_sealed(), 2u);
  EXPECT_EQ(writer.segments_sealed(), 1u);

  const JournalStats stats = verify_journal(dir_);
  EXPECT_TRUE(stats.ok) << stats.error;
  EXPECT_EQ(stats.segments, 1u);
  EXPECT_EQ(stats.records, 2u);

  const auto records = read_journal(dir_);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].kind, JournalRecord::Kind::kSlot);
  EXPECT_EQ(records[1].kind, JournalRecord::Kind::kAlert);
}

TEST_F(JournalDirTest, SealWithEmptyBufferIsNoOp) {
  JournalWriter writer(dir_);
  writer.seal();
  EXPECT_EQ(writer.segments_sealed(), 0u);
  EXPECT_TRUE(read_journal_lines(dir_).empty());
}

TEST_F(JournalDirTest, WriterContinuesNumberingAfterRestart) {
  {
    JournalWriter writer(dir_);
    writer.append(sample_slot_record());
    writer.seal();
  }
  {
    // A restored daemon's writer appends after the surviving segments.
    JournalWriter writer(dir_);
    JournalRecord second = sample_slot_record();
    second.slot = 43;
    writer.append(second);
    writer.seal();
  }
  const auto records = read_journal(dir_);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].slot, 42u);
  EXPECT_EQ(records[1].slot, 43u);
}

TEST_F(JournalDirTest, MissingDirectoryReadsEmptyButWriterThrows) {
  EXPECT_TRUE(read_journal_lines(dir_ + "_nonexistent").empty());
  EXPECT_THROW(JournalWriter(dir_ + "_nonexistent"), JournalError);
}

TEST_F(JournalDirTest, DetectsTruncatedSegment) {
  JournalWriter writer(dir_);
  writer.append(sample_slot_record());
  writer.append(sample_alert_record());
  writer.seal();

  // Chop the tail off the sealed segment: the envelope byte count (and
  // checksum) must catch it — this is the torn-write signature a plain
  // line-oriented log would silently accept.
  const std::string path = segment_path(dir_, 0);
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents.substr(0, contents.size() - 10);
  out.close();

  const JournalStats stats = verify_journal(dir_);
  EXPECT_FALSE(stats.ok);
  EXPECT_FALSE(stats.error.empty());
  EXPECT_THROW(read_journal_lines(dir_), JournalError);
}

TEST_F(JournalDirTest, DetectsFlippedPayloadByte) {
  JournalWriter writer(dir_);
  writer.append(sample_slot_record());
  writer.seal();

  const std::string path = segment_path(dir_, 0);
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  // Flip a byte in the record payload (past the envelope line).
  const std::size_t payload = contents.find('\n') + 8;
  ASSERT_LT(payload, contents.size());
  contents[payload] ^= 0x01;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
  out.close();

  EXPECT_FALSE(verify_journal(dir_).ok);
}

TEST_F(JournalDirTest, DetectsMissingMiddleSegment) {
  JournalWriter writer(dir_);
  for (std::uint64_t t = 0; t < 3; ++t) {
    JournalRecord record = sample_slot_record();
    record.slot = t;
    writer.append(record);
    writer.seal();
  }
  ASSERT_EQ(writer.segments_sealed(), 3u);
  std::remove(segment_path(dir_, 1).c_str());
  // A hole in the segment numbering means lost records, not a prefix.
  EXPECT_FALSE(verify_journal(dir_).ok);
}

TEST_F(JournalDirTest, IgnoresForeignFilesInDirectory) {
  JournalWriter writer(dir_);
  writer.append(sample_slot_record());
  writer.seal();
  std::ofstream(dir_ + "/not-a-segment.txt") << "scratch\n";
  const JournalStats stats = verify_journal(dir_);
  EXPECT_TRUE(stats.ok) << stats.error;
  EXPECT_EQ(stats.records, 1u);
}

}  // namespace
}  // namespace cea::obs
