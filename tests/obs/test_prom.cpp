#include "obs/prom.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

namespace cea::obs {
namespace {

TEST(PromSanitize, MapsUnsafeCharactersToUnderscore) {
  EXPECT_EQ(prom_sanitize("serve.slot"), "serve_slot");
  EXPECT_EQ(prom_sanitize("a-b/c d"), "a_b_c_d");
  EXPECT_EQ(prom_sanitize("already_fine_09"), "already_fine_09");
  EXPECT_EQ(prom_sanitize("9lives"), "_9lives");  // leading digit
  EXPECT_EQ(prom_sanitize(""), "_");
}

TEST(PromValue, SpellsSpecialsThePrometheusWay) {
  EXPECT_EQ(prom_value(std::numeric_limits<double>::quiet_NaN()), "NaN");
  EXPECT_EQ(prom_value(std::numeric_limits<double>::infinity()), "+Inf");
  EXPECT_EQ(prom_value(-std::numeric_limits<double>::infinity()), "-Inf");
  EXPECT_EQ(prom_value(0.0), "0");
  EXPECT_EQ(prom_value(1.5), "1.5");
}

TEST(PrometheusText, RendersCountersGaugesHistograms) {
  Snapshot snapshot;
  snapshot.counters.push_back({"slots.executed", 12.0});
  snapshot.gauges.push_back({"fleet.edges", 64.0, /*ever_set=*/true});
  snapshot.gauges.push_back({"never.set", 0.0, /*ever_set=*/false});
  HistogramValue histogram;
  histogram.name = "serve.slot";
  histogram.upper_edges = {1.0, 10.0};
  histogram.bucket_counts = {2, 3, 1};  // last bucket = overflow
  histogram.count = 6;
  histogram.sum = 21.5;
  histogram.min = 0.5;
  histogram.max = 40.0;
  snapshot.histograms.push_back(histogram);

  const std::string text = prometheus_text(snapshot, {});
  EXPECT_NE(text.find("# TYPE cea_slots_executed_total counter\n"
                      "cea_slots_executed_total 12\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cea_fleet_edges gauge\ncea_fleet_edges 64\n"),
            std::string::npos);
  EXPECT_EQ(text.find("never_set"), std::string::npos);
  // Cumulative buckets with the implicit +Inf edge.
  EXPECT_NE(text.find("cea_serve_slot_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("cea_serve_slot_bucket{le=\"10\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("cea_serve_slot_bucket{le=\"+Inf\"} 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("cea_serve_slot_sum 21.5\n"), std::string::npos);
  EXPECT_NE(text.find("cea_serve_slot_count 6\n"), std::string::npos);
}

TEST(PrometheusText, ExtraSamplesShareTypeHeaderPerName) {
  std::vector<PromSample> extra;
  extra.push_back({"tenant_allowance_balance", {{"tenant", "t0"}}, 5.0,
                   "gauge"});
  extra.push_back({"tenant_allowance_balance", {{"tenant", "t1"}}, -1.25,
                   "gauge"});
  extra.push_back({"slo_alerts", {{"kind", "feed_stall"}}, 2.0, "counter"});

  const std::string text = prometheus_text(Snapshot{}, extra);
  // One TYPE header covering both tenant samples.
  EXPECT_EQ(text,
            "# TYPE cea_tenant_allowance_balance gauge\n"
            "cea_tenant_allowance_balance{tenant=\"t0\"} 5\n"
            "cea_tenant_allowance_balance{tenant=\"t1\"} -1.25\n"
            "# TYPE cea_slo_alerts counter\n"
            "cea_slo_alerts{kind=\"feed_stall\"} 2\n");
}

TEST(PrometheusText, EscapesLabelValues) {
  std::vector<PromSample> extra;
  extra.push_back({"g", {{"tenant", "a\"b\\c\nd"}}, 1.0, "gauge"});
  const std::string text = prometheus_text(Snapshot{}, extra);
  EXPECT_NE(text.find("cea_g{tenant=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(HistogramQuantile, InterpolatesAndClampsToObservedRange) {
  HistogramValue histogram;
  histogram.upper_edges = {10.0, 20.0};
  histogram.bucket_counts = {4, 4, 2};
  histogram.count = 10;
  histogram.min = 2.0;
  histogram.max = 50.0;

  EXPECT_EQ(histogram_quantile(HistogramValue{}, 0.5), 0.0);  // empty
  // Median: rank 5 falls in the second bucket, 1/4 of the way through.
  EXPECT_DOUBLE_EQ(histogram_quantile(histogram, 0.5), 12.5);
  // Tail rank lands in the overflow bucket: report the observed max.
  EXPECT_DOUBLE_EQ(histogram_quantile(histogram, 0.99), 50.0);
  // q clamps; q=0 stays within the first bucket's clamped lower edge.
  EXPECT_DOUBLE_EQ(histogram_quantile(histogram, -1.0),
                   histogram_quantile(histogram, 0.0));
  EXPECT_GE(histogram_quantile(histogram, 0.0), histogram.min);
}

TEST(HistogramQuantile, SingleObservationReportsItsBucket) {
  HistogramValue histogram;
  histogram.upper_edges = {100.0};
  histogram.bucket_counts = {1, 0};
  histogram.count = 1;
  histogram.min = 37.0;
  histogram.max = 37.0;
  const double median = histogram_quantile(histogram, 0.5);
  EXPECT_GE(median, histogram.min);
  EXPECT_LE(median, 100.0);
}

}  // namespace
}  // namespace cea::obs
