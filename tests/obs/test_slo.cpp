#include "obs/slo.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace cea::obs {
namespace {

SloTenantSlot slot(std::uint64_t t, double emission, double balance,
                   std::uint64_t horizon = 100) {
  SloTenantSlot observed;
  observed.slot = t;
  observed.horizon = horizon;
  observed.emission = emission;
  observed.balance = balance;
  return observed;
}

TEST(SloWatchdog, QuietWhenOnPace) {
  // 1 unit of emission per slot with a balance that always covers the
  // remaining horizon: no rule fires.
  SloWatchdog watchdog(SloConfig{}, 1);
  for (std::uint64_t t = 0; t < 50; ++t) {
    watchdog.observe_slot(0, slot(t, 1.0, 200.0));
  }
  EXPECT_TRUE(watchdog.drain().empty());
  EXPECT_EQ(watchdog.total(), 0u);
}

TEST(SloWatchdog, ProjectedCapBreachFiresOnceAndReports) {
  SloWatchdog watchdog(SloConfig{}, 1);
  // 2 units/slot, 90 slots remaining after t=9, balance 50: projected
  // remaining emissions 180 > 50 — on pace to settle uncovered.
  std::vector<SloAlert> raised;
  for (std::uint64_t t = 0; t < 10; ++t) {
    watchdog.observe_slot(0, slot(t, 2.0, 50.0));
    for (const SloAlert& alert : watchdog.drain()) raised.push_back(alert);
  }
  ASSERT_EQ(raised.size(), 1u);  // edge-triggered: one alert per episode
  EXPECT_EQ(raised[0].kind, SloKind::kProjectedCapBreach);
  EXPECT_EQ(raised[0].tenant, 0u);
  EXPECT_GT(raised[0].value, raised[0].threshold);
  EXPECT_EQ(watchdog.counts()[static_cast<std::size_t>(
                SloKind::kProjectedCapBreach)],
            1u);
}

TEST(SloWatchdog, BreachRearmsAfterRecovery) {
  SloWatchdog watchdog(SloConfig{.window = 4}, 1);
  std::size_t breaches = 0;
  auto count_breaches = [&] {
    for (const SloAlert& alert : watchdog.drain()) {
      if (alert.kind == SloKind::kProjectedCapBreach) ++breaches;
    }
  };
  // Burn hot (breach), cool down until the window mean clears, burn hot
  // again: the rule must re-arm and fire a second episode.
  std::uint64_t t = 0;
  for (; t < 8; ++t) watchdog.observe_slot(0, slot(t, 5.0, 10.0)), count_breaches();
  EXPECT_EQ(breaches, 1u);
  for (; t < 40; ++t) watchdog.observe_slot(0, slot(t, 0.0, 10.0)), count_breaches();
  EXPECT_EQ(breaches, 1u);  // recovered, no new alert
  for (; t < 48; ++t) watchdog.observe_slot(0, slot(t, 5.0, 10.0)), count_breaches();
  EXPECT_EQ(breaches, 2u);
}

TEST(SloWatchdog, InsolvencyFiresAtFloorPerTenant) {
  // Emissions near zero keep the breach projection quiet so the drained
  // alert is the insolvency alone.
  SloWatchdog watchdog(SloConfig{.min_balance = 1.0}, 2);
  watchdog.observe_slot(0, slot(0, 1e-6, 5.0));
  watchdog.observe_slot(1, slot(0, 1e-6, 0.5));  // below the floor
  const auto alerts = watchdog.drain();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, SloKind::kAllowanceInsolvency);
  EXPECT_EQ(alerts[0].tenant, 1u);
  EXPECT_DOUBLE_EQ(alerts[0].value, 0.5);
  EXPECT_DOUBLE_EQ(alerts[0].threshold, 1.0);
}

TEST(SloWatchdog, FeedStallIsEdgeTriggeredAndDisabledAtZero) {
  SloConfig config;
  config.feed_stall_ms = 100;
  SloWatchdog watchdog(config, 1);
  watchdog.observe_feed(3, /*now_ms=*/1000, /*last_ready_ms=*/950);
  EXPECT_TRUE(watchdog.drain().empty());
  watchdog.observe_feed(3, 1200, 950);  // 250ms stale
  auto alerts = watchdog.drain();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, SloKind::kFeedStall);
  EXPECT_EQ(alerts[0].tenant, kSloNoTenant);
  watchdog.observe_feed(3, 1300, 950);  // still the same stall episode
  EXPECT_TRUE(watchdog.drain().empty());
  watchdog.observe_feed(4, 1400, 1400);  // feed recovered
  watchdog.observe_feed(5, 1600, 1400);  // new stall episode
  EXPECT_EQ(watchdog.drain().size(), 1u);

  SloWatchdog disabled(SloConfig{}, 1);  // feed_stall_ms = 0
  disabled.observe_feed(0, 1'000'000, 0);
  EXPECT_TRUE(disabled.drain().empty());
}

TEST(SloWatchdog, DeadlineMissIsLevelTriggered) {
  SloConfig config;
  config.slot_deadline_ms = 10;
  SloWatchdog watchdog(config, 1);
  watchdog.observe_slot_wall(0, 5);
  watchdog.observe_slot_wall(1, 25);
  watchdog.observe_slot_wall(2, 25);  // every miss fires
  const auto alerts = watchdog.drain();
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].kind, SloKind::kSlotDeadlineMiss);
  EXPECT_EQ(alerts[1].slot, 2u);
  EXPECT_EQ(watchdog.total(), 2u);
}

TEST(SloWatchdog, IdenticalInputsRaiseIdenticalAlerts) {
  // Determinism pin: the watchdog is a pure function of its observation
  // sequence, so two instances fed the same slots agree alert-for-alert.
  SloConfig config;
  config.window = 8;
  config.slot_deadline_ms = 3;
  auto run = [&config] {
    SloWatchdog watchdog(config, 2);
    std::vector<SloAlert> raised;
    for (std::uint64_t t = 0; t < 64; ++t) {
      const double emission = 0.5 + static_cast<double>((t * 7) % 5);
      watchdog.observe_slot(0, slot(t, emission, 40.0 - emission, 64));
      watchdog.observe_slot(1, slot(t, 0.25, 100.0, 64));
      watchdog.observe_slot_wall(t, static_cast<std::int64_t>(t % 6));
      for (const SloAlert& alert : watchdog.drain()) raised.push_back(alert);
    }
    return raised;
  };
  const auto first = run();
  const auto second = run();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].kind, second[i].kind);
    EXPECT_EQ(first[i].tenant, second[i].tenant);
    EXPECT_EQ(first[i].slot, second[i].slot);
    EXPECT_DOUBLE_EQ(first[i].value, second[i].value);
  }
}

TEST(SloWatchdog, KindNamesAreStable) {
  // The journal's alert field and the metrics labels depend on these
  // exact spellings; renaming them is a format break.
  EXPECT_STREQ(slo_kind_name(SloKind::kProjectedCapBreach),
               "projected_cap_breach");
  EXPECT_STREQ(slo_kind_name(SloKind::kAllowanceInsolvency),
               "allowance_insolvency");
  EXPECT_STREQ(slo_kind_name(SloKind::kFeedStall), "feed_stall");
  EXPECT_STREQ(slo_kind_name(SloKind::kSlotDeadlineMiss),
               "slot_deadline_miss");
}

}  // namespace
}  // namespace cea::obs
