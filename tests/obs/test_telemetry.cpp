#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace cea::obs {
namespace {

// Telemetry state is process-global; every test starts from zeroed values.
class Telemetry : public ::testing::Test {
 protected:
  void SetUp() override {
    disable_tracing();
    set_detail(false);
    reset();
  }
  void TearDown() override {
    disable_tracing();
    set_detail(false);
    reset();
  }
};

const CounterValue* find_counter(const Snapshot& snap, std::string_view name) {
  for (const auto& c : snap.counters)
    if (c.name == name) return &c;
  return nullptr;
}

const GaugeValue* find_gauge(const Snapshot& snap, std::string_view name) {
  for (const auto& g : snap.gauges)
    if (g.name == name) return &g;
  return nullptr;
}

const HistogramValue* find_histogram(const Snapshot& snap,
                                     std::string_view name) {
  for (const auto& h : snap.histograms)
    if (h.name == name) return &h;
  return nullptr;
}

TEST_F(Telemetry, CompiledInMatchesBuildConfiguration) {
#if defined(CEA_TELEMETRY)
  EXPECT_TRUE(compiled_in());
#else
  EXPECT_FALSE(compiled_in());
#endif
}

TEST_F(Telemetry, CounterAccumulates) {
  const MetricId id = counter("test.counter");
  if (!compiled_in()) {
    EXPECT_EQ(id, kInvalidMetric);
    return;
  }
  add(id);
  add(id, 2.5);
  const auto snap = snapshot();
  const auto* c = find_counter(snap, "test.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->value, 3.5);
}

TEST_F(Telemetry, ReRegistrationReturnsSameId) {
  if (!compiled_in()) return;
  EXPECT_EQ(counter("test.same"), counter("test.same"));
  // Same name, different kind: a programming error, reported as invalid
  // rather than silently corrupting the existing metric.
  EXPECT_EQ(gauge("test.same"), kInvalidMetric);
}

TEST_F(Telemetry, InvalidIdIsANoOp) {
  add(kInvalidMetric);
  set(kInvalidMetric, 1.0);
  observe(kInvalidMetric, 1.0);
  // Nothing to assert beyond "did not crash"; the snapshot must not have
  // grown a phantom metric.
  for (const auto& c : snapshot().counters) EXPECT_NE(c.name, "");
}

TEST_F(Telemetry, GaugeLastWriteWins) {
  if (!compiled_in()) return;
  const MetricId id = gauge("test.gauge");
  const auto before = snapshot();
  const auto* unset = find_gauge(before, "test.gauge");
  ASSERT_NE(unset, nullptr);
  EXPECT_FALSE(unset->ever_set);

  set(id, 1.0);
  set(id, -7.5);
  const auto snap = snapshot();
  const auto* g = find_gauge(snap, "test.gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_TRUE(g->ever_set);
  EXPECT_DOUBLE_EQ(g->value, -7.5);
}

TEST_F(Telemetry, HistogramBucketEdges) {
  if (!compiled_in()) return;
  const std::array<double, 3> edges = {1.0, 10.0, 100.0};
  const MetricId id = histogram("test.hist", edges);

  // Bucket semantics: v <= edge lands at that edge's bucket; values past
  // the last edge land in the implicit overflow bucket.
  observe(id, 0.5);    // <= 1      -> bucket 0
  observe(id, 1.0);    // <= 1      -> bucket 0 (inclusive upper edge)
  observe(id, 1.001);  // <= 10     -> bucket 1
  observe(id, 10.0);   // <= 10     -> bucket 1
  observe(id, 99.0);   // <= 100    -> bucket 2
  observe(id, 1e6);    // overflow  -> bucket 3

  const auto snap = snapshot();
  const auto* h = find_histogram(snap, "test.hist");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->upper_edges.size(), 3u);
  ASSERT_EQ(h->bucket_counts.size(), 4u);
  EXPECT_EQ(h->bucket_counts[0], 2u);
  EXPECT_EQ(h->bucket_counts[1], 2u);
  EXPECT_EQ(h->bucket_counts[2], 1u);
  EXPECT_EQ(h->bucket_counts[3], 1u);
  EXPECT_EQ(h->count, 6u);
  EXPECT_DOUBLE_EQ(h->min, 0.5);
  EXPECT_DOUBLE_EQ(h->max, 1e6);
  EXPECT_DOUBLE_EQ(h->sum, 0.5 + 1.0 + 1.001 + 10.0 + 99.0 + 1e6);
}

TEST_F(Telemetry, HistogramRejectsNonIncreasingEdges) {
  if (!compiled_in()) return;
  const std::array<double, 3> bad = {1.0, 1.0, 2.0};
  EXPECT_EQ(histogram("test.bad_edges", bad), kInvalidMetric);
  EXPECT_EQ(histogram("test.empty_edges", std::span<const double>{}),
            kInvalidMetric);
}

TEST_F(Telemetry, PoolShardsAggregateToSerialTotals) {
  if (!compiled_in()) return;
  const MetricId hits = counter("test.pool.hits");
  const MetricId weight = counter("test.pool.weight");
  const std::array<double, 4> edges = {10.0, 100.0, 1000.0, 10000.0};
  const MetricId hist = histogram("test.pool.hist", edges);

  constexpr std::size_t kTasks = 512;
  util::ThreadPool pool(3);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    add(hits);
    add(weight, static_cast<double>(i));
    observe(hist, static_cast<double>(i));
  });

  // The pool's job-completion handshake is the quiescent point: all worker
  // shard writes are visible here. The aggregate must equal what a single
  // thread recording the same values would produce.
  const auto snap = snapshot();
  const auto* h = find_counter(snap, "test.pool.hits");
  const auto* w = find_counter(snap, "test.pool.weight");
  const auto* hg = find_histogram(snap, "test.pool.hist");
  ASSERT_NE(h, nullptr);
  ASSERT_NE(w, nullptr);
  ASSERT_NE(hg, nullptr);
  EXPECT_DOUBLE_EQ(h->value, static_cast<double>(kTasks));
  EXPECT_DOUBLE_EQ(w->value,
                   static_cast<double>(kTasks * (kTasks - 1) / 2));
  EXPECT_EQ(hg->count, kTasks);
  EXPECT_DOUBLE_EQ(hg->sum, static_cast<double>(kTasks * (kTasks - 1) / 2));
  std::uint64_t bucket_total = 0;
  for (const auto c : hg->bucket_counts) bucket_total += c;
  EXPECT_EQ(bucket_total, kTasks);
  EXPECT_EQ(hg->bucket_counts[0], 11u);   // 0..10
  EXPECT_EQ(hg->bucket_counts[1], 90u);   // 11..100
  EXPECT_EQ(hg->bucket_counts[2], 411u);  // 101..511
  EXPECT_EQ(hg->bucket_counts[3], 0u);
}

TEST_F(Telemetry, RetiredThreadTotalsAreFolded) {
  if (!compiled_in()) return;
  const MetricId id = counter("test.retired");
  std::thread worker([&] { add(id, 5.0); });
  worker.join();
  add(id, 1.0);
  const auto snap = snapshot();
  const auto* c = find_counter(snap, "test.retired");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->value, 6.0);
}

TEST_F(Telemetry, ResetZeroesValuesButKeepsIds) {
  if (!compiled_in()) return;
  const MetricId id = counter("test.reset");
  add(id, 4.0);
  reset();
  const Snapshot snap_zeroed = snapshot();
  const auto* zeroed = find_counter(snap_zeroed, "test.reset");
  ASSERT_NE(zeroed, nullptr);
  EXPECT_DOUBLE_EQ(zeroed->value, 0.0);
  // The cached id survives the reset (static locals are registered once).
  add(id, 2.0);
  const Snapshot snap_after = snapshot();
  const auto* after = find_counter(snap_after, "test.reset");
  ASSERT_NE(after, nullptr);
  EXPECT_DOUBLE_EQ(after->value, 2.0);
}

TEST_F(Telemetry, SpanRecordsIntoDurationHistogram) {
  if (!compiled_in()) return;
  {
    CEA_SPAN("test.span");
  }
  {
    CEA_SPAN("test.span");
  }
  const Snapshot snap = snapshot();
  const auto* h = find_histogram(snap, "test.span");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_GE(h->min, 0.0);
}

TEST_F(Telemetry, MacrosVanishWhenCompiledOut) {
  // CEA_TELEM arguments must not be evaluated when telemetry is compiled
  // out; when compiled in they run exactly once per pass.
  int evaluations = 0;
  CEA_TELEM(++evaluations;);
  EXPECT_EQ(evaluations, compiled_in() ? 1 : 0);
}

TEST_F(Telemetry, InternIsStableAndDeduplicated) {
  const std::string dynamic = std::string("test.intern.") + "label";
  const char* a = intern(dynamic);
  const char* b = intern("test.intern.label");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "test.intern.label");
}

TEST_F(Telemetry, DetailSwitchTogglesButDefaultsOff) {
  EXPECT_FALSE(detail_enabled());
  set_detail(true);
  if (compiled_in()) EXPECT_TRUE(detail_enabled());
  set_detail(false);
  EXPECT_FALSE(detail_enabled());
}

TEST_F(Telemetry, CardinalityCapRedirectsNewNamesToOverflowBin) {
  if (!compiled_in()) return;
  const std::size_t saved = metric_capacity();
  // Names registered before the cap tightens must keep resolving to their
  // own metric afterwards.
  const MetricId existing = counter("test.cap.existing");
  ASSERT_NE(existing, kInvalidMetric);

  set_metric_capacity(1);  // registry already exceeds this
  EXPECT_EQ(metric_capacity(), 1u);
  const std::uint64_t capped_before = capped_registrations();

  // Per-edge-keyed names — the fleet-scale pattern the cap exists for —
  // all collapse onto one overflow bin instead of growing the registry.
  const MetricId first = counter("test.cap.edge.0");
  ASSERT_NE(first, kInvalidMetric);
  for (int e = 1; e < 50; ++e) {
    const std::string name = "test.cap.edge." + std::to_string(e);
    EXPECT_EQ(counter(name), first);
  }
  EXPECT_GE(capped_registrations() - capped_before, 50u);
  EXPECT_EQ(counter("test.cap.existing"), existing);
  // The overflow bin itself is registered past the cap and accumulates.
  EXPECT_EQ(counter("telemetry.capped.counter"), first);
  add(first, 3.0);
  const Snapshot snap = snapshot();
  const auto* bin = find_counter(snap, "telemetry.capped.counter");
  ASSERT_NE(bin, nullptr);
  EXPECT_DOUBLE_EQ(bin->value, 3.0);

  // Gauges and histograms cap independently, into their own bins. One
  // filler registration per kind guarantees the kind is at the cap (the
  // counter kind got there via the suite's earlier registrations).
  (void)gauge("test.cap.gauge.filler");  // ensures the kind is at the cap
  const MetricId gauge_bin = gauge("test.cap.gauge.overflowing");
  EXPECT_EQ(gauge("telemetry.capped.gauge"), gauge_bin);
  (void)duration_histogram("test.cap.histo.filler");
  const MetricId histo_bin = duration_histogram("test.cap.histo.overflowing");
  EXPECT_EQ(duration_histogram("telemetry.capped.histogram"), histo_bin);

  set_metric_capacity(saved);
}

TEST_F(Telemetry, NowNsIsMonotonic) {
  const auto a = now_ns();
  const auto b = now_ns();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace cea::obs
