#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/telemetry.h"

namespace cea::obs {
namespace {

// ------------------------------------------------------------ tiny JSON
//
// A strict recursive-descent parser, just enough to prove the exporters
// emit well-formed JSON and to inspect the event list. Throws on any
// syntax error, which gtest reports as a test failure.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const { return object.at(key); }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing data");
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c)
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    JsonValue value;
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      value.type = JsonValue::Type::kString;
      value.string = parse_string();
      return value;
    }
    if (consume_literal("true")) {
      value.type = JsonValue::Type::kBool;
      value.boolean = true;
      return value;
    }
    if (consume_literal("false")) {
      value.type = JsonValue::Type::kBool;
      return value;
    }
    if (consume_literal("null")) return value;
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      if (peek() != '"') throw std::runtime_error("expected object key");
      std::string key = parse_string();
      expect(':');
      value.object.emplace(std::move(key), parse_value());
      const char next = peek();
      ++pos_;
      if (next == '}') return value;
      if (next != ',') throw std::runtime_error("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(parse_value());
      const char next = peek();
      ++pos_;
      if (next == ']') return value;
      if (next != ',') throw std::runtime_error("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) throw std::runtime_error("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) throw std::runtime_error("bad \\u");
            pos_ += 4;  // control characters only; drop them
            break;
          default: throw std::runtime_error("unknown escape");
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) throw std::runtime_error("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) throw std::runtime_error("expected number");
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    value.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

class Tracing : public ::testing::Test {
 protected:
  void SetUp() override {
    disable_tracing();
    reset();
  }
  void TearDown() override {
    disable_tracing();
    drain_trace();
    reset();
  }
};

TEST_F(Tracing, ChromeTraceParsesAndSpansNest) {
  if (!compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  enable_tracing();
  {
    CEA_SPAN("test.outer");
    {
      CEA_SPAN("test.inner");
    }
    {
      CEA_SPAN("test.inner");
    }
  }
  const auto events = drain_trace();
  const std::string json = chrome_trace_json(events);
  const JsonValue root = parse_json(json);

  ASSERT_TRUE(root.has("traceEvents"));
  const auto& list = root.at("traceEvents").array;
  ASSERT_EQ(list.size(), 3u);

  // Spans close inner-first, and drain_trace sorts by start time, so the
  // outer span is first again in the export.
  const JsonValue* outer = nullptr;
  std::vector<const JsonValue*> inner;
  for (const auto& event : list) {
    EXPECT_EQ(event.at("ph").string, "X");
    EXPECT_EQ(event.at("pid").number, 1.0);
    if (event.at("name").string == "test.outer") outer = &event;
    if (event.at("name").string == "test.inner") inner.push_back(&event);
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_EQ(inner.size(), 2u);

  // Nesting: both inner spans lie within [outer.ts, outer.ts + outer.dur]
  // on the same thread track — exactly how Perfetto decides stacking.
  const double outer_begin = outer->at("ts").number;
  const double outer_end = outer_begin + outer->at("dur").number;
  double previous_end = outer_begin;
  for (const JsonValue* span : inner) {
    EXPECT_EQ(span->at("tid").number, outer->at("tid").number);
    const double begin = span->at("ts").number;
    const double end = begin + span->at("dur").number;
    EXPECT_GE(begin, outer_begin);
    EXPECT_LE(end, outer_end);
    // Siblings must not overlap (they were sequential scopes).
    EXPECT_GE(begin, previous_end);
    previous_end = end;
  }
}

TEST_F(Tracing, CounterEventsCarryValues) {
  if (!compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  enable_tracing();
  trace_counter("test.lambda", 1.5);
  trace_counter("test.lambda", 2.5);
  const auto events = drain_trace();
  const JsonValue root = parse_json(chrome_trace_json(events));
  const auto& list = root.at("traceEvents").array;
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].at("ph").string, "C");
  EXPECT_DOUBLE_EQ(list[0].at("args").at("value").number, 1.5);
  EXPECT_DOUBLE_EQ(list[1].at("args").at("value").number, 2.5);
  EXPECT_LE(list[0].at("ts").number, list[1].at("ts").number);
}

TEST_F(Tracing, RingBufferBoundsEventsAndCountsDrops) {
  if (!compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  enable_tracing(/*capacity_per_thread=*/16);
  for (int i = 0; i < 40; ++i) trace_counter("test.ring", i);
  EXPECT_EQ(trace_dropped(), 24u);
  const auto events = drain_trace();
  ASSERT_EQ(events.size(), 16u);
  // Oldest events were overwritten: the survivors are the last 16 pushes.
  EXPECT_DOUBLE_EQ(events.front().value, 24.0);
  EXPECT_DOUBLE_EQ(events.back().value, 39.0);
}

TEST_F(Tracing, DisabledTracingRecordsNothing) {
  trace_counter("test.off", 1.0);
  {
    CEA_SPAN("test.off.span");
  }
  EXPECT_TRUE(drain_trace().empty());
  EXPECT_EQ(trace_dropped(), 0u);
}

TEST_F(Tracing, ProfileJsonParsesWithMetaCountersAndHistograms) {
  Metadata meta = {{"git_sha", "abc123"},
                   {"isa", "avx2"},
                   {"threads", "4"},
                   {"wall_clock_sec", "3.25"}};
  if (compiled_in()) {
    add(counter("test.profile.counter"), 3.0);
    set(gauge("test.profile.gauge"), 0.25);
    const double edges[] = {1.0, 2.0};
    const MetricId h = histogram("test.profile.hist", edges);
    observe(h, 0.5);
    observe(h, 1.5);
    observe(h, 9.0);
  }
  const JsonValue root = parse_json(profile_json(snapshot(), meta));

  EXPECT_EQ(root.at("telemetry_compiled").boolean, compiled_in());
  EXPECT_EQ(root.at("meta").at("git_sha").string, "abc123");
  EXPECT_EQ(root.at("meta").at("isa").string, "avx2");
  // Numeric-looking metadata values come out as JSON numbers, not strings.
  EXPECT_EQ(root.at("meta").at("threads").type, JsonValue::Type::kNumber);
  EXPECT_EQ(root.at("meta").at("threads").number, 4.0);
  EXPECT_EQ(root.at("meta").at("wall_clock_sec").number, 3.25);
  if (!compiled_in()) {
    EXPECT_TRUE(root.at("counters").object.empty());
    return;
  }
  EXPECT_DOUBLE_EQ(root.at("counters").at("test.profile.counter").number, 3.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("test.profile.gauge").number, 0.25);
  const auto& hist = root.at("histograms").at("test.profile.hist");
  EXPECT_DOUBLE_EQ(hist.at("count").number, 3.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").number, 11.0);
  EXPECT_DOUBLE_EQ(hist.at("min").number, 0.5);
  EXPECT_DOUBLE_EQ(hist.at("max").number, 9.0);
  const auto& buckets = hist.at("buckets").array;
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(buckets[0].at("le").number, 1.0);
  EXPECT_DOUBLE_EQ(buckets[0].at("count").number, 1.0);
  EXPECT_DOUBLE_EQ(buckets[1].at("count").number, 1.0);
  EXPECT_EQ(buckets[2].at("le").string, "inf");  // overflow bucket
  EXPECT_DOUBLE_EQ(buckets[2].at("count").number, 1.0);
}

TEST_F(Tracing, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  const JsonValue parsed =
      parse_json("\"" + json_escape("quote\" back\\ tab\t") + "\"");
  EXPECT_EQ(parsed.string, "quote\" back\\ tab\t");
}

}  // namespace
}  // namespace cea::obs
