#include "opt/brent.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cea {
namespace {

TEST(BrentRoot, LinearFunction) {
  const auto r = brent_root([](double x) { return 2.0 * x - 4.0; }, 0.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 2.0, 1e-10);
}

TEST(BrentRoot, Quadratic) {
  const auto r = brent_root([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::sqrt(2.0), 1e-10);
}

TEST(BrentRoot, Transcendental) {
  const auto r =
      brent_root([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.7390851332151607, 1e-10);
}

TEST(BrentRoot, RootAtEndpoint) {
  const auto r = brent_root([](double x) { return x - 1.0; }, 1.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.x, 1.0);
  EXPECT_EQ(r.iterations, 0);
}

TEST(BrentRoot, FailsWithoutSignChange) {
  const auto r = brent_root([](double x) { return x * x + 1.0; }, -1.0, 1.0);
  EXPECT_FALSE(r.converged);
}

TEST(BrentRoot, SteepFunction) {
  const auto r = brent_root(
      [](double x) { return std::exp(20.0 * x) - 3.0; }, -1.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::log(3.0) / 20.0, 1e-9);
}

TEST(BrentRoot, FlatNearRoot) {
  const auto r = brent_root([](double x) { return std::pow(x - 1.0, 3); },
                            0.0, 3.0, 1e-10, 500);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 1.0, 1e-3);
}

TEST(BrentMinimize, Parabola) {
  const auto r = brent_minimize(
      [](double x) { return (x - 3.0) * (x - 3.0) + 1.0; }, 0.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 3.0, 1e-6);
  EXPECT_NEAR(r.fx, 1.0, 1e-10);
}

TEST(BrentMinimize, AsymmetricFunction) {
  const auto r = brent_minimize(
      [](double x) { return std::exp(x) - 2.0 * x; }, -2.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::log(2.0), 1e-6);
}

TEST(BrentMinimize, BoundaryMinimum) {
  // Monotone increasing: minimizer at the left bracket edge.
  const auto r = brent_minimize([](double x) { return x; }, 1.0, 5.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 1.0, 1e-4);
}

TEST(BrentMinimize, Sinusoid) {
  const auto r = brent_minimize([](double x) { return std::sin(x); }, 3.0, 6.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 4.71238898, 1e-5);  // 3*pi/2
  EXPECT_NEAR(r.fx, -1.0, 1e-9);
}

}  // namespace
}  // namespace cea
