#include "opt/projection.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace cea {
namespace {

double sum_of(const std::vector<double>& xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

TEST(SimplexProjection, PointAlreadyOnSimplex) {
  const std::vector<double> p = {0.2, 0.3, 0.5};
  const auto projected = project_to_simplex(p);
  for (std::size_t i = 0; i < p.size(); ++i)
    EXPECT_NEAR(projected[i], p[i], 1e-12);
}

TEST(SimplexProjection, UniformFromSymmetricPoint) {
  const std::vector<double> p = {5.0, 5.0, 5.0, 5.0};
  const auto projected = project_to_simplex(p);
  for (double v : projected) EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(SimplexProjection, ClampsDominatedCoordinates) {
  const std::vector<double> p = {10.0, 0.0};
  const auto projected = project_to_simplex(p);
  EXPECT_NEAR(projected[0], 1.0, 1e-12);
  EXPECT_NEAR(projected[1], 0.0, 1e-12);
}

TEST(SimplexProjection, NegativeCoordinatesHandled) {
  const std::vector<double> p = {-1.0, 0.5, 0.7};
  const auto projected = project_to_simplex(p);
  EXPECT_NEAR(sum_of(projected), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(projected[0], 0.0);
  for (double v : projected) EXPECT_GE(v, 0.0);
}

TEST(SimplexProjection, RandomPointsFeasibleAndOptimal) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> p(5);
    for (auto& v : p) v = rng.uniform(-2.0, 2.0);
    const auto projected = project_to_simplex(p);
    // Feasibility.
    ASSERT_NEAR(sum_of(projected), 1.0, 1e-9);
    for (double v : projected) ASSERT_GE(v, -1e-12);
    // Optimality: no feasible perturbation may be closer to p.
    auto distance_sq = [&](const std::vector<double>& q) {
      double d = 0.0;
      for (std::size_t i = 0; i < p.size(); ++i)
        d += (q[i] - p[i]) * (q[i] - p[i]);
      return d;
    };
    const double best = distance_sq(projected);
    for (int probe = 0; probe < 20; ++probe) {
      auto q = projected;
      const auto i = static_cast<std::size_t>(rng.uniform_int(0, 4));
      auto j = static_cast<std::size_t>(rng.uniform_int(0, 3));
      if (j >= i) ++j;
      const double delta = rng.uniform(0.0, 0.3) * std::min(q[i], 1.0);
      q[i] -= delta;
      q[j] += delta;
      ASSERT_GE(distance_sq(q), best - 1e-9);
    }
  }
}

TEST(BoxProjection, Clamps) {
  const std::vector<double> p = {-1.0, 0.5, 3.0};
  const auto projected = project_to_box(p, 0.0, 2.0);
  EXPECT_DOUBLE_EQ(projected[0], 0.0);
  EXPECT_DOUBLE_EQ(projected[1], 0.5);
  EXPECT_DOUBLE_EQ(projected[2], 2.0);
}

TEST(BoxProjection, EmptyInput) {
  EXPECT_TRUE(project_to_box({}, 0.0, 1.0).empty());
}

}  // namespace
}  // namespace cea
