#include "opt/simplex.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cea {
namespace {

LpConstraint row(std::vector<double> coeffs, Relation rel, double rhs) {
  return {std::move(coeffs), rel, rhs};
}

TEST(Simplex, TrivialEmptyProblem) {
  LpProblem p;
  const auto s = solve_lp(p);
  EXPECT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_TRUE(s.x.empty());
}

TEST(Simplex, TwoVariableMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic example).
  LpProblem p;
  p.objective = {3.0, 5.0};
  p.maximize = true;
  p.constraints = {
      row({1.0, 0.0}, Relation::kLessEqual, 4.0),
      row({0.0, 2.0}, Relation::kLessEqual, 12.0),
      row({3.0, 2.0}, Relation::kLessEqual, 18.0),
  };
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-8);
  EXPECT_NEAR(s.x[0], 2.0, 1e-8);
  EXPECT_NEAR(s.x[1], 6.0, 1e-8);
}

TEST(Simplex, MinimizationWithGreaterEqual) {
  // min 2x + 3y s.t. x + y >= 10, x >= 2.
  LpProblem p;
  p.objective = {2.0, 3.0};
  p.constraints = {
      row({1.0, 1.0}, Relation::kGreaterEqual, 10.0),
      row({1.0, 0.0}, Relation::kGreaterEqual, 2.0),
  };
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  // All weight on the cheaper variable x.
  EXPECT_NEAR(s.objective, 20.0, 1e-8);
  EXPECT_NEAR(s.x[0], 10.0, 1e-8);
  EXPECT_NEAR(s.x[1], 0.0, 1e-8);
}

TEST(Simplex, EqualityConstraint) {
  // min x + 2y s.t. x + y = 5, y >= 1.
  LpProblem p;
  p.objective = {1.0, 2.0};
  p.constraints = {
      row({1.0, 1.0}, Relation::kEqual, 5.0),
      row({0.0, 1.0}, Relation::kGreaterEqual, 1.0),
  };
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 4.0, 1e-8);
  EXPECT_NEAR(s.x[1], 1.0, 1e-8);
  EXPECT_NEAR(s.objective, 6.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
  // x <= 1 and x >= 3.
  LpProblem p;
  p.objective = {1.0};
  p.constraints = {
      row({1.0}, Relation::kLessEqual, 1.0),
      row({1.0}, Relation::kGreaterEqual, 3.0),
  };
  EXPECT_EQ(solve_lp(p).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // max x with x >= 0 only.
  LpProblem p;
  p.objective = {1.0};
  p.maximize = true;
  p.constraints = {row({1.0}, Relation::kGreaterEqual, 0.0)};
  EXPECT_EQ(solve_lp(p).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x s.t. -x <= -4  (i.e. x >= 4).
  LpProblem p;
  p.objective = {1.0};
  p.constraints = {row({-1.0}, Relation::kLessEqual, -4.0)};
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 4.0, 1e-8);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic cycling-prone structure; Bland's rule must terminate.
  LpProblem p;
  p.objective = {-0.75, 150.0, -0.02, 6.0};
  p.constraints = {
      row({0.25, -60.0, -0.04, 9.0}, Relation::kLessEqual, 0.0),
      row({0.5, -90.0, -0.02, 3.0}, Relation::kLessEqual, 0.0),
      row({0.0, 0.0, 1.0, 0.0}, Relation::kLessEqual, 1.0),
  };
  const auto s = solve_lp(p);
  EXPECT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -0.05, 1e-6);
}

TEST(Simplex, RedundantConstraintsHandled) {
  LpProblem p;
  p.objective = {1.0, 1.0};
  p.constraints = {
      row({1.0, 1.0}, Relation::kEqual, 4.0),
      row({2.0, 2.0}, Relation::kEqual, 8.0),  // redundant duplicate
  };
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-8);
}

TEST(Simplex, BoxConstrainedArbitrage) {
  // Mimics offline trading: buy cheap (cost 2) sell dear (earn 3), both
  // capped at 5, sell cannot exceed buy. Expect full-cap arbitrage.
  LpProblem p;
  p.objective = {2.0, -3.0};  // minimize 2 z - 3 w
  p.constraints = {
      row({1.0, 0.0}, Relation::kLessEqual, 5.0),
      row({0.0, 1.0}, Relation::kLessEqual, 5.0),
      row({-1.0, 1.0}, Relation::kLessEqual, 0.0),  // w <= z
  };
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 5.0, 1e-8);
  EXPECT_NEAR(s.x[1], 5.0, 1e-8);
  EXPECT_NEAR(s.objective, -5.0, 1e-8);
}

TEST(Simplex, MediumRandomProblemConsistency) {
  // A 12-var problem with known optimum by construction: min sum x_i
  // s.t. x_i >= i for each i — optimum is the sum of the bounds.
  const std::size_t n = 12;
  LpProblem p;
  p.objective.assign(n, 1.0);
  double expected = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> coeffs(n, 0.0);
    coeffs[i] = 1.0;
    p.constraints.push_back(
        row(std::move(coeffs), Relation::kGreaterEqual,
            static_cast<double>(i)));
    expected += static_cast<double>(i);
  }
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, expected, 1e-6);
}

TEST(SimplexStatus, ToStringNames) {
  EXPECT_EQ(to_string(LpStatus::kOptimal), "optimal");
  EXPECT_EQ(to_string(LpStatus::kInfeasible), "infeasible");
  EXPECT_EQ(to_string(LpStatus::kUnbounded), "unbounded");
  EXPECT_EQ(to_string(LpStatus::kIterationLimit), "iteration-limit");
}

}  // namespace
}  // namespace cea
