// Property test: on random 2-variable LPs the simplex optimum must match a
// dense grid search over the feasible box (parameterized over seeds).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "opt/simplex.h"
#include "util/rng.h"

namespace cea {
namespace {

struct RandomLp {
  LpProblem problem;
  double box = 10.0;  // implicit x, y <= box rows are included
};

RandomLp make_random_lp(std::uint64_t seed) {
  Rng rng(seed);
  RandomLp lp;
  lp.problem.objective = {rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)};
  const int rows = static_cast<int>(rng.uniform_int(1, 4));
  for (int r = 0; r < rows; ++r) {
    LpConstraint con;
    con.coeffs = {rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)};
    con.relation = rng.bernoulli(0.5) ? Relation::kLessEqual
                                      : Relation::kGreaterEqual;
    // Keep the origin-ish region feasible often enough.
    con.rhs = con.relation == Relation::kLessEqual ? rng.uniform(1.0, 8.0)
                                                   : rng.uniform(-8.0, 1.0);
    lp.problem.constraints.push_back(std::move(con));
  }
  for (int v = 0; v < 2; ++v) {
    LpConstraint box;
    box.coeffs = {v == 0 ? 1.0 : 0.0, v == 1 ? 1.0 : 0.0};
    box.relation = Relation::kLessEqual;
    box.rhs = lp.box;
    lp.problem.constraints.push_back(std::move(box));
  }
  return lp;
}

/// Grid-search reference optimum (400 x 400 over the box).
double grid_optimum(const RandomLp& lp, bool& feasible) {
  double best = std::numeric_limits<double>::infinity();
  feasible = false;
  const int n = 400;
  for (int i = 0; i <= n; ++i) {
    for (int j = 0; j <= n; ++j) {
      const double x = lp.box * i / n;
      const double y = lp.box * j / n;
      bool ok = true;
      for (const auto& con : lp.problem.constraints) {
        const double lhs = con.coeffs[0] * x + con.coeffs[1] * y;
        if (con.relation == Relation::kLessEqual && lhs > con.rhs + 1e-9)
          ok = false;
        if (con.relation == Relation::kGreaterEqual && lhs < con.rhs - 1e-9)
          ok = false;
        if (!ok) break;
      }
      if (!ok) continue;
      feasible = true;
      best = std::min(best,
                      lp.problem.objective[0] * x + lp.problem.objective[1] * y);
    }
  }
  return best;
}

class SimplexRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexRandom, MatchesGridSearch) {
  const RandomLp lp = make_random_lp(GetParam());
  bool grid_feasible = false;
  const double grid_best = grid_optimum(lp, grid_feasible);
  const auto solution = solve_lp(lp.problem);
  if (!grid_feasible) {
    EXPECT_EQ(solution.status, LpStatus::kInfeasible)
        << "seed " << GetParam();
    return;
  }
  ASSERT_EQ(solution.status, LpStatus::kOptimal) << "seed " << GetParam();
  // Grid resolution bounds the reference error.
  const double tolerance = 0.15;
  EXPECT_NEAR(solution.objective, grid_best, tolerance)
      << "seed " << GetParam();
  // The simplex point must itself be feasible.
  for (const auto& con : lp.problem.constraints) {
    const double lhs = con.coeffs[0] * solution.x[0] +
                       con.coeffs[1] * solution.x[1];
    if (con.relation == Relation::kLessEqual)
      EXPECT_LE(lhs, con.rhs + 1e-6);
    else
      EXPECT_GE(lhs, con.rhs - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandom,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace cea
