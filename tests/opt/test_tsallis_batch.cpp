// Property tests of the batched cross-edge Tsallis-Newton solver: for
// randomized losses, learning rates, warm hints, and batch compositions,
// every kernel variant must reproduce the scalar oracle
// tsallis_probabilities_into bit for bit — probabilities AND refreshed
// warm-start — including forced-divergence (lane delegation / Brent) and
// mixed-convergence lanes via the Newton iteration-cap hook.
//
// The variants are pinned in-process through solve_variant (CEA_FORCE_ISA
// is read once per process, so an env sweep needs separate processes; CI
// runs this binary under CEA_FORCE_ISA=scalar/avx2/avx512 to cover the
// dispatch path too).
#include "opt/tsallis_batch.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "opt/tsallis_step.h"
#include "util/cpu.h"

namespace cea {
namespace {

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

std::vector<TsallisBatchVariant> available_variants() {
  std::vector<TsallisBatchVariant> variants{TsallisBatchVariant::kScalar};
  if (util::have_avx2()) variants.push_back(TsallisBatchVariant::kAvx2);
  if (util::have_avx512()) variants.push_back(TsallisBatchVariant::kAvx512);
  return variants;
}

const char* name_of(TsallisBatchVariant v) {
  switch (v) {
    case TsallisBatchVariant::kScalar: return "scalar";
    case TsallisBatchVariant::kAvx2: return "avx2";
    case TsallisBatchVariant::kAvx512: return "avx512";
  }
  return "?";
}

struct Request {
  std::vector<double> losses;
  double eta = 1.0;
  double warm = 0.0;
};

/// Random request mix spanning the regimes the solver sees in the
/// simulator and well beyond: tiny to huge loss spreads, negative
/// losses, extreme etas, cold / fresh / stale warm hints.
std::vector<Request> random_requests(std::mt19937_64& rng, std::size_t count,
                                     std::size_t min_arms = 2,
                                     std::size_t max_arms = 17) {
  std::uniform_int_distribution<std::size_t> arms_dist(min_arms, max_arms);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<Request> requests(count);
  for (auto& req : requests) {
    const std::size_t n = arms_dist(rng);
    const double spread = std::pow(10.0, -9.0 + 16.0 * unit(rng));
    const double base = (unit(rng) < 0.3 ? -1.0 : 1.0) * 10.0 * unit(rng);
    req.losses.resize(n);
    for (double& l : req.losses) l = base + spread * unit(rng);
    req.eta = std::pow(10.0, -4.0 + 6.0 * unit(rng));
    const double warm_kind = unit(rng);
    if (warm_kind < 0.4) {
      req.warm = 0.0;  // cold start
    } else if (warm_kind < 0.7) {
      // Fresh hint: the scaled root of this very problem.
      std::vector<double> p, scratch;
      double warm = 0.0;
      tsallis_probabilities_into(req.losses, req.eta, p, scratch, &warm);
      req.warm = warm;
    } else {
      // Stale / junk hint; the safeguard bracket must absorb it.
      req.warm = std::pow(10.0, -3.0 + 8.0 * unit(rng));
    }
  }
  return requests;
}

/// Asserts that a batch solve of `requests` matches per-request oracle
/// solves bit for bit on every available variant.
void expect_matches_oracle(const std::vector<Request>& requests) {
  // Oracle answers first (they also set the expected warm-out values).
  std::vector<std::vector<double>> expected_p(requests.size());
  std::vector<double> expected_warm(requests.size());
  std::vector<double> scratch;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    double warm = requests[i].warm;
    tsallis_probabilities_into(requests[i].losses, requests[i].eta,
                               expected_p[i], scratch, &warm);
    // The oracle leaves a single-arm caller's hint untouched.
    expected_warm[i] = requests[i].losses.size() == 1 ? requests[i].warm : warm;
  }

  TsallisBatchSolver solver;
  for (TsallisBatchVariant variant : available_variants()) {
    solver.clear();
    for (const auto& req : requests)
      solver.push(req.losses, req.eta, req.warm);
    solver.solve_variant(variant);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const auto p = solver.probabilities(i);
      ASSERT_EQ(p.size(), expected_p[i].size());
      for (std::size_t a = 0; a < p.size(); ++a) {
        ASSERT_TRUE(same_bits(p[a], expected_p[i][a]))
            << name_of(variant) << " request " << i << " arm " << a
            << ": batch " << std::hexfloat << p[a] << " oracle "
            << expected_p[i][a];
      }
      ASSERT_TRUE(same_bits(solver.scaled_lambda_warm(i), expected_warm[i]))
          << name_of(variant) << " request " << i << " warm: batch "
          << std::hexfloat << solver.scaled_lambda_warm(i) << " oracle "
          << expected_warm[i];
    }
  }
}

TEST(TsallisBatch, ActiveVariantRespectsCpuFeatures) {
  const TsallisBatchVariant v = tsallis_batch_active_variant();
  if (util::have_avx512()) {
    EXPECT_EQ(v, TsallisBatchVariant::kAvx512);
  } else if (util::have_avx2()) {
    EXPECT_EQ(v, TsallisBatchVariant::kAvx2);
  } else {
    EXPECT_EQ(v, TsallisBatchVariant::kScalar);
  }
}

TEST(TsallisBatch, MatchesOracleAcrossBatchSizes) {
  std::mt19937_64 rng(0xbad5eed5u);
  // Sizes straddle every lane-count boundary of the widest kernel.
  for (std::size_t count : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 13u, 64u, 257u}) {
    SCOPED_TRACE("batch size " + std::to_string(count));
    expect_matches_oracle(random_requests(rng, count));
  }
}

TEST(TsallisBatch, MatchesOracleOnTenThousandEdges) {
  std::mt19937_64 rng(17);
  expect_matches_oracle(random_requests(rng, 10000, 2, 6));
}

TEST(TsallisBatch, SingleArmRequestsShortCircuit) {
  TsallisBatchSolver solver;
  const std::vector<double> one{3.25};
  solver.push(one, 0.5, 0.0);
  solver.push(one, 2.0, 7.5);  // warm must come back untouched
  const std::vector<double> two{1.0, 2.0};
  solver.push(two, 0.5, 0.0);
  solver.solve();
  EXPECT_EQ(solver.probabilities(0).size(), 1u);
  EXPECT_EQ(solver.probabilities(0)[0], 1.0);
  EXPECT_EQ(solver.scaled_lambda_warm(1), 7.5);
  EXPECT_EQ(solver.probabilities(2).size(), 2u);
}

TEST(TsallisBatch, MixedArmCountsInOneBatch) {
  std::mt19937_64 rng(99);
  auto requests = random_requests(rng, 23, 2, 5);
  auto more = random_requests(rng, 23, 11, 40);
  requests.insert(requests.end(), more.begin(), more.end());
  Request single;
  single.losses = {0.0};
  single.warm = 1.25;
  requests.push_back(single);
  expect_matches_oracle(requests);
}

TEST(TsallisBatch, ForcedDivergenceAndMixedConvergenceLanes) {
  std::mt19937_64 rng(4242);
  // Cap 1: every lane diverges -> full delegation to the oracle's Brent
  // path. Caps 2-6: easy lanes (tight spreads, fresh warm hints) converge
  // while hard ones (huge spreads, cold starts) do not, so chunks carry
  // mixed exit kinds. The oracle runs under the same per-thread cap, so
  // bit-equality must hold throughout.
  for (int cap : {1, 2, 3, 6}) {
    SCOPED_TRACE("iteration cap " + std::to_string(cap));
    const int previous = set_tsallis_newton_iteration_cap(cap);
    expect_matches_oracle(random_requests(rng, 41));
    set_tsallis_newton_iteration_cap(previous);
  }
}

TEST(TsallisBatch, SolverIsReusableAcrossClearCycles) {
  std::mt19937_64 rng(7);
  TsallisBatchSolver solver;
  for (int round = 0; round < 3; ++round) {
    const auto requests = random_requests(rng, 9);
    std::vector<std::vector<double>> expected(requests.size());
    std::vector<double> scratch;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      double warm = requests[i].warm;
      tsallis_probabilities_into(requests[i].losses, requests[i].eta,
                                 expected[i], scratch, &warm);
    }
    solver.clear();
    for (const auto& req : requests)
      solver.push(req.losses, req.eta, req.warm);
    solver.solve();
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const auto p = solver.probabilities(i);
      for (std::size_t a = 0; a < p.size(); ++a)
        ASSERT_TRUE(same_bits(p[a], expected[i][a]))
            << "round " << round << " request " << i << " arm " << a;
    }
  }
}

}  // namespace
}  // namespace cea
