#include "opt/tsallis_step.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace cea {
namespace {

double sum_of(const std::vector<double>& p) {
  double s = 0.0;
  for (double v : p) s += v;
  return s;
}

TEST(TsallisStep, UniformForEqualLosses) {
  const std::vector<double> losses = {5.0, 5.0, 5.0, 5.0};
  const auto p = tsallis_probabilities(losses, 0.5);
  for (double v : p) EXPECT_NEAR(v, 0.25, 1e-9);
}

TEST(TsallisStep, SingleArm) {
  const std::vector<double> losses = {3.0};
  const auto p = tsallis_probabilities(losses, 0.1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
}

TEST(TsallisStep, SumsToOne) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> losses(6);
    for (auto& l : losses) l = rng.uniform(0.0, 100.0);
    const double eta = rng.uniform(0.01, 2.0);
    const auto p = tsallis_probabilities(losses, eta);
    EXPECT_NEAR(sum_of(p), 1.0, 1e-9);
    for (double v : p) EXPECT_GT(v, 0.0);
  }
}

TEST(TsallisStep, LowerLossGetsHigherProbability) {
  const std::vector<double> losses = {1.0, 5.0, 20.0};
  const auto p = tsallis_probabilities(losses, 0.3);
  EXPECT_GT(p[0], p[1]);
  EXPECT_GT(p[1], p[2]);
}

TEST(TsallisStep, ShiftInvariance) {
  // Adding a constant to all losses must not change the distribution.
  const std::vector<double> a = {2.0, 7.0, 11.0};
  std::vector<double> b = a;
  for (auto& v : b) v += 123.0;
  const auto pa = tsallis_probabilities(a, 0.4);
  const auto pb = tsallis_probabilities(b, 0.4);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(pa[i], pb[i], 1e-9);
}

TEST(TsallisStep, SmallEtaApproachesUniform) {
  const std::vector<double> losses = {0.0, 1.0, 2.0};
  const auto p = tsallis_probabilities(losses, 1e-6);
  for (double v : p) EXPECT_NEAR(v, 1.0 / 3.0, 1e-3);
}

TEST(TsallisStep, LargeEtaConcentratesOnBestArm) {
  const std::vector<double> losses = {0.0, 10.0, 20.0};
  const auto p = tsallis_probabilities(losses, 100.0);
  EXPECT_GT(p[0], 0.98);
}

TEST(TsallisStep, SatisfiesKktOptimality) {
  // The returned point must minimize the OMD objective over the simplex:
  // compare against dense perturbations in feasible directions.
  const std::vector<double> losses = {3.0, 1.0, 4.0, 1.5, 9.0};
  const double eta = 0.7;
  const auto p = tsallis_probabilities(losses, eta);
  const double f_star = tsallis_step_objective(losses, eta, p);
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    // Random feasible perturbation: move mass between two coordinates.
    auto q = p;
    const auto i = static_cast<std::size_t>(rng.uniform_int(0, 4));
    auto j = static_cast<std::size_t>(rng.uniform_int(0, 3));
    if (j >= i) ++j;
    const double delta = rng.uniform(0.0, 0.5) * std::min(q[i], 1.0 - q[j]);
    q[i] -= delta;
    q[j] += delta;
    const double f_q = tsallis_step_objective(losses, eta, q);
    EXPECT_GE(f_q, f_star - 1e-8);
  }
}

TEST(TsallisStep, MatchesBruteForceOnTwoArms) {
  // With two arms the simplex is 1-D: grid search the optimum directly.
  const std::vector<double> losses = {2.0, 6.0};
  const double eta = 0.5;
  const auto p = tsallis_probabilities(losses, eta);
  double best_q = 0.0, best_f = 1e300;
  for (int i = 1; i < 10000; ++i) {
    const double q = i / 10000.0;
    const std::vector<double> cand = {q, 1.0 - q};
    const double f = tsallis_step_objective(losses, eta, cand);
    if (f < best_f) {
      best_f = f;
      best_q = q;
    }
  }
  EXPECT_NEAR(p[0], best_q, 2e-4);
}

TEST(TsallisStep, HandlesHugeLossGaps) {
  const std::vector<double> losses = {0.0, 1e9};
  const auto p = tsallis_probabilities(losses, 0.5);
  EXPECT_NEAR(sum_of(p), 1.0, 1e-9);
  EXPECT_GT(p[0], 0.999);
  EXPECT_GT(p[1], 0.0);
}

}  // namespace
}  // namespace cea
