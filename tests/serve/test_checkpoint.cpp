// The checkpoint/restore bit-identity contract of the serving stack
// (ISSUE: kill at ANY slot boundary + restore == uninterrupted run, bit
// for bit, for serial and pooled engines and multi-tenant controllers),
// plus rejection of damaged or mismatched checkpoints.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "../integration/golden_trace.h"
#include "serve/controller.h"
#include "serve/daemon.h"
#include "serve/feed.h"
#include "sim/experiment.h"
#include "util/state_io.h"
#include "util/thread_pool.h"

namespace cea::serve {
namespace {

using sim::golden::Trace;
using sim::golden::diff_traces;
using sim::golden::join_diffs;
using sim::golden::trace_of;

// One tenant on the golden scenario shape, customizable per test.
TenantSpec make_spec(const std::string& name, std::uint64_t env_seed,
                     std::uint64_t run_seed, std::size_t horizon,
                     std::size_t edges = 3) {
  TenantSpec spec;
  spec.name = name;
  spec.scenario = sim::golden::golden_config();
  spec.scenario.num_edges = edges;
  spec.scenario.horizon = horizon;
  spec.scenario.workload.num_slots = horizon;
  spec.scenario.seed = env_seed;
  spec.combo = sim::ours_combo();
  spec.run_seed = run_seed;
  return spec;
}

// Advance the controller to `until` by polling the feed slot by slot.
void drive(ServeController& controller, FeedSource& feed, std::size_t until) {
  SlotInput input;
  while (controller.slot() < until) {
    ASSERT_EQ(feed.poll(controller.slot(), input), FeedStatus::kReady);
    controller.step(input.quote, input.workload);
  }
}

std::vector<Trace> traces_of(ServeController& controller) {
  std::vector<Trace> traces;
  for (std::size_t i = 0; i < controller.num_tenants(); ++i) {
    traces.push_back(trace_of(controller.tenant_engine(i).result()));
  }
  return traces;
}

void expect_identical(ServeController& expected, ServeController& actual) {
  ASSERT_EQ(expected.num_tenants(), actual.num_tenants());
  const auto expected_traces = traces_of(expected);
  const auto actual_traces = traces_of(actual);
  for (std::size_t i = 0; i < expected_traces.size(); ++i) {
    const auto diffs = diff_traces(expected_traces[i], actual_traces[i]);
    EXPECT_TRUE(diffs.empty())
        << "tenant " << expected.tenant_name(i) << ":\n" << join_diffs(diffs);
  }
}

std::string temp_checkpoint_path() {
  return ::testing::TempDir() + "cea_serve_ckpt_" +
         ::testing::UnitTest::GetInstance()->current_test_info()->name();
}

// ---------------------------------------------------------------------------
// Streaming == batch: a daemon replaying the environment's own traces
// reproduces Simulator::run (via run_combo) bit for bit.
// ---------------------------------------------------------------------------

TEST(ServeVsSimulator, ReplayedDaemonMatchesBatchRunBitForBit) {
  const auto config = sim::golden::golden_config();
  const auto env = sim::Environment::make_parametric(config);
  const auto combo = sim::ours_combo();
  const auto batch = sim::run_combo(env, combo, sim::golden::kGoldenRunSeed);

  std::vector<TenantSpec> specs = {make_spec("solo", config.seed,
                                             sim::golden::kGoldenRunSeed,
                                             config.horizon)};
  ServeController controller(specs, sim::SimOptions{});
  ReplayFeed feed(env.workload(), env.prices());
  ServeDaemon daemon(controller, feed, DaemonConfig{});
  const DaemonReport report = daemon.run();

  EXPECT_TRUE(report.feed_ended);
  EXPECT_EQ(report.final_slot, config.horizon);
  EXPECT_EQ(report.slots_processed, config.horizon);
  const auto diffs =
      diff_traces(trace_of(batch),
                  trace_of(controller.tenant_engine(0).result()));
  EXPECT_TRUE(diffs.empty()) << join_diffs(diffs);
}

// ---------------------------------------------------------------------------
// Kill-at-ANY-slot-boundary: checkpoint at every k in [0, horizon], restore
// into a fresh controller, continue — the final state must be bit-identical
// to the uninterrupted run.
// ---------------------------------------------------------------------------

TEST(CheckpointRoundTrip, EverySlotBoundaryRestoresBitIdentically) {
  constexpr std::size_t kHorizon = 12;
  const auto specs = std::vector<TenantSpec>{make_spec("t0", 21, 5, kHorizon,
                                                       /*edges=*/2)};
  SyntheticFeed feed(2, 77);

  ServeController reference(specs, sim::SimOptions{});
  drive(reference, feed, kHorizon);
  const auto reference_traces = traces_of(reference);

  for (std::size_t k = 0; k <= kHorizon; ++k) {
    ServeController first_life(specs, sim::SimOptions{});
    drive(first_life, feed, k);
    const std::string payload = first_life.checkpoint_payload();

    ServeController second_life(specs, sim::SimOptions{});
    second_life.restore_payload(payload);
    ASSERT_EQ(second_life.slot(), k);
    drive(second_life, feed, kHorizon);

    const auto restored = traces_of(second_life);
    const auto diffs = diff_traces(reference_traces[0], restored[0]);
    EXPECT_TRUE(diffs.empty())
        << "checkpoint at slot " << k << ":\n" << join_diffs(diffs);
  }
}

// ---------------------------------------------------------------------------
// The headline drill: 160 slots straight vs checkpoint@80 + restore +
// continue, through the daemon and real checkpoint files — serial, pooled,
// and multi-tenant with a binding shared market cap.
// ---------------------------------------------------------------------------

void run_kill_restore_drill(const std::vector<TenantSpec>& specs,
                            const sim::SimOptions& options,
                            MarketRule market, std::size_t total_edges) {
  constexpr std::size_t kHorizon = 160;
  constexpr std::size_t kKillAt = 80;
  const std::string path = temp_checkpoint_path();
  std::remove(path.c_str());

  SyntheticFeed feed(total_edges, 1234);

  // Uninterrupted run.
  ServeController straight(specs, options, market);
  {
    DaemonConfig config;
    config.max_slots = kHorizon;
    ServeDaemon daemon(straight, feed, config);
    const auto report = daemon.run();
    ASSERT_EQ(report.final_slot, kHorizon);
  }

  // First life: killed at slot 80 (final checkpoint at the boundary).
  {
    ServeController first_life(specs, options, market);
    DaemonConfig config;
    config.checkpoint_path = path;
    config.stop_after_slots = kKillAt;
    ServeDaemon daemon(first_life, feed, config);
    const auto report = daemon.run();
    ASSERT_EQ(report.final_slot, kKillAt);
    ASSERT_GE(report.checkpoints_written, 1u);
  }

  // Second life: restore and finish.
  ServeController second_life(specs, options, market);
  {
    DaemonConfig config;
    config.checkpoint_path = path;
    config.max_slots = kHorizon;
    ServeDaemon daemon(second_life, feed, config);
    ASSERT_TRUE(daemon.restore_if_present());
    ASSERT_EQ(second_life.slot(), kKillAt);
    const auto report = daemon.run();
    ASSERT_EQ(report.final_slot, kHorizon);
    ASSERT_EQ(report.slots_processed, kHorizon - kKillAt);
  }
  std::remove(path.c_str());

  expect_identical(straight, second_life);
}

TEST(KillRestoreDrill, SerialSingleTenant) {
  run_kill_restore_drill({make_spec("t0", 17, 7, 160)}, sim::SimOptions{},
                         MarketRule{}, 3);
}

TEST(KillRestoreDrill, PooledSingleTenant) {
  sim::SimOptions options;
  options.pool = &util::ThreadPool::global();
  run_kill_restore_drill({make_spec("t0", 17, 7, 160)}, options, MarketRule{},
                         3);
}

TEST(KillRestoreDrill, MultiTenantWithSharedMarketCap) {
  const std::vector<TenantSpec> specs = {make_spec("alpha", 17, 7, 160),
                                         make_spec("beta", 18, 8, 160)};
  run_kill_restore_drill(specs, sim::SimOptions{}, MarketRule{2.0}, 6);
}

TEST(KillRestoreDrill, PooledMultiTenant) {
  sim::SimOptions options;
  options.pool = &util::ThreadPool::global();
  const std::vector<TenantSpec> specs = {make_spec("alpha", 17, 7, 160),
                                         make_spec("beta", 18, 8, 160)};
  run_kill_restore_drill(specs, options, MarketRule{2.0}, 6);
}

// Pooled and serial engines must agree bit-for-bit through the serve path
// too (the engine contract, re-pinned at the controller level).
TEST(KillRestoreDrill, PooledMatchesSerial) {
  const std::vector<TenantSpec> specs = {make_spec("t0", 17, 7, 48)};
  SyntheticFeed feed(3, 55);
  ServeController serial(specs, sim::SimOptions{});
  sim::SimOptions pooled_options;
  pooled_options.pool = &util::ThreadPool::global();
  ServeController pooled(specs, pooled_options);
  drive(serial, feed, 48);
  drive(pooled, feed, 48);
  expect_identical(serial, pooled);
}

// ---------------------------------------------------------------------------
// Rejection: damaged files and mismatched controllers must throw
// util::StateError, never restore garbage.
// ---------------------------------------------------------------------------

class CheckpointRejectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = temp_checkpoint_path();
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  // A 2-tenant controller advanced a few slots, checkpointed to path_.
  std::vector<TenantSpec> specs() const {
    return {make_spec("alpha", 17, 7, 16), make_spec("beta", 18, 8, 16)};
  }
  std::string make_payload() {
    ServeController controller(specs(), sim::SimOptions{});
    SyntheticFeed feed(6, 9);
    drive(controller, feed, 5);
    return controller.checkpoint_payload();
  }
  std::string path_;
};

TEST_F(CheckpointRejectionTest, RestoreRejectsMismatchedConfigurations) {
  const std::string payload = make_payload();

  {  // tenant count
    ServeController other({make_spec("alpha", 17, 7, 16)}, sim::SimOptions{});
    EXPECT_THROW(other.restore_payload(payload), util::StateError);
  }
  {  // tenant name
    ServeController other({make_spec("alpha", 17, 7, 16),
                           make_spec("gamma", 18, 8, 16)},
                          sim::SimOptions{});
    EXPECT_THROW(other.restore_payload(payload), util::StateError);
  }
  {  // run seed
    ServeController other({make_spec("alpha", 17, 7, 16),
                           make_spec("beta", 18, 9, 16)},
                          sim::SimOptions{});
    EXPECT_THROW(other.restore_payload(payload), util::StateError);
  }
  {  // fleet shape
    ServeController other({make_spec("alpha", 17, 7, 16),
                           make_spec("beta", 18, 8, 16, /*edges=*/4)},
                          sim::SimOptions{});
    EXPECT_THROW(other.restore_payload(payload), util::StateError);
  }
  {  // market rule
    ServeController other(specs(), sim::SimOptions{}, MarketRule{3.0});
    EXPECT_THROW(other.restore_payload(payload), util::StateError);
  }
  {  // algorithm pairing
    auto changed = specs();
    changed[1].combo = sim::baseline_combos().front();
    ServeController other(changed, sim::SimOptions{});
    EXPECT_THROW(other.restore_payload(payload), util::StateError);
  }
}

TEST_F(CheckpointRejectionTest, RestoreRejectsFieldCorruptedPayload) {
  std::string payload = make_payload();
  const auto pos = payload.find("engine.balance");
  ASSERT_NE(pos, std::string::npos);
  payload.replace(pos, 14, "engine.balence");
  ServeController controller(specs(), sim::SimOptions{});
  EXPECT_THROW(controller.restore_payload(payload), util::StateError);
}

TEST_F(CheckpointRejectionTest, RestoreRejectsTruncatedPayload) {
  const std::string payload = make_payload();
  ServeController controller(specs(), sim::SimOptions{});
  EXPECT_THROW(controller.restore_payload(
                   payload.substr(0, payload.size() / 2)),
               util::StateError);
}

TEST_F(CheckpointRejectionTest, RestoreRejectsTrailingGarbage) {
  std::string payload = make_payload();
  payload += "extra.key 42\n";
  ServeController controller(specs(), sim::SimOptions{});
  EXPECT_THROW(controller.restore_payload(payload), util::StateError);
}

TEST_F(CheckpointRejectionTest, DaemonRejectsCorruptedCheckpointFile) {
  util::write_checkpoint_file(path_, make_payload());
  // Flip one payload byte in place.
  std::string bytes;
  {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  bytes[bytes.size() / 2] ^= 0x01;
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  ServeController controller(specs(), sim::SimOptions{});
  SyntheticFeed feed(6, 9);
  DaemonConfig config;
  config.checkpoint_path = path_;
  ServeDaemon daemon(controller, feed, config);
  EXPECT_THROW(daemon.restore_if_present(), util::StateError);
}

TEST_F(CheckpointRejectionTest, DaemonRejectsVersionMismatchedFile) {
  util::write_checkpoint_file(path_, make_payload());
  std::string bytes;
  {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  const auto pos = bytes.find(" v1 ");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos + 2] = '7';
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  ServeController controller(specs(), sim::SimOptions{});
  SyntheticFeed feed(6, 9);
  ServeDaemon daemon(controller, feed, DaemonConfig{});
  EXPECT_THROW(daemon.restore_from(path_), util::StateError);
}

TEST_F(CheckpointRejectionTest, RestoreIfPresentIsFalseWithoutAFile) {
  ServeController controller(specs(), sim::SimOptions{});
  SyntheticFeed feed(6, 9);
  DaemonConfig config;
  config.checkpoint_path = path_;
  ServeDaemon daemon(controller, feed, config);
  EXPECT_FALSE(daemon.restore_if_present());
  EXPECT_EQ(controller.slot(), 0u);
}

// ---------------------------------------------------------------------------
// Daemon behaviour around feeds and periodic checkpoints.
// ---------------------------------------------------------------------------

TEST(ServeDaemon, WritesPeriodicAndFinalCheckpoints) {
  const std::string path = temp_checkpoint_path();
  std::remove(path.c_str());
  ServeController controller({make_spec("t0", 17, 7, 32)}, sim::SimOptions{});
  SyntheticFeed feed(3, 3);
  DaemonConfig config;
  config.checkpoint_path = path;
  config.checkpoint_every = 8;
  config.max_slots = 32;
  ServeDaemon daemon(controller, feed, config);
  const auto report = daemon.run();
  EXPECT_EQ(report.slots_processed, 32u);
  // 4 periodic (slots 8, 16, 24, 32) + the final one.
  EXPECT_EQ(report.checkpoints_written, 5u);
  // The file restores into a fresh controller at the final boundary.
  ServeController restored({make_spec("t0", 17, 7, 32)}, sim::SimOptions{});
  restored.restore_payload(util::read_checkpoint_file(path));
  EXPECT_EQ(restored.slot(), 32u);
  std::remove(path.c_str());
}

TEST(ServeDaemon, StopsWhenFeedStaysPending) {
  const std::string dir = ::testing::TempDir() + "cea_serve_pending";
  ::mkdir(dir.c_str(), 0755);
  ServeController controller({make_spec("t0", 17, 7, 8)}, sim::SimOptions{});
  DirectoryTailFeed feed(dir, 3);
  DaemonConfig config;
  config.poll_interval_ms = 0;
  config.max_pending_polls = 3;
  ServeDaemon daemon(controller, feed, config);
  const auto report = daemon.run();
  EXPECT_EQ(report.slots_processed, 0u);
  EXPECT_FALSE(report.feed_ended);
  ::rmdir(dir.c_str());
}

TEST(ServeDaemon, RejectsFeedWidthMismatch) {
  ServeController controller({make_spec("t0", 17, 7, 8)}, sim::SimOptions{});
  SyntheticFeed feed(5, 1);  // controller needs 3
  EXPECT_THROW(ServeDaemon(controller, feed, DaemonConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace cea::serve
