#include "serve/feed.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace cea::serve {
namespace {

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

// --- ReplayFeed -----------------------------------------------------------

data::PriceSeries make_prices(std::size_t slots) {
  data::PriceSeries prices;
  for (std::size_t t = 0; t < slots; ++t) {
    prices.buy.push_back(8.0 + 0.25 * static_cast<double>(t));
    prices.sell.push_back(7.0 + 0.25 * static_cast<double>(t));
  }
  return prices;
}

TEST(ReplayFeed, IndexesTracesBySlot) {
  ReplayFeed feed({{10, 11, 12}, {20, 21, 22}}, make_prices(3));
  SlotInput input;
  ASSERT_EQ(feed.poll(1, input), FeedStatus::kReady);
  EXPECT_DOUBLE_EQ(input.quote.buy_price, 8.25);
  EXPECT_DOUBLE_EQ(input.quote.sell_price, 7.25);
  EXPECT_EQ(input.workload, (std::vector<int>{11, 21}));
  EXPECT_EQ(feed.num_edges(), 2u);
  EXPECT_EQ(feed.num_slots(), 3u);
}

TEST(ReplayFeed, EndsAfterLastSlot) {
  ReplayFeed feed({{1, 2}}, make_prices(2));
  SlotInput input;
  EXPECT_EQ(feed.poll(2, input), FeedStatus::kEnd);
  EXPECT_EQ(feed.poll(100, input), FeedStatus::kEnd);
}

TEST(ReplayFeed, LoopsModuloTraceLength) {
  ReplayFeed feed({{1, 2, 3}}, make_prices(3), /*loop=*/true);
  SlotInput direct;
  SlotInput wrapped;
  ASSERT_EQ(feed.poll(1, direct), FeedStatus::kReady);
  ASSERT_EQ(feed.poll(4, wrapped), FeedStatus::kReady);
  EXPECT_EQ(direct.workload, wrapped.workload);
  EXPECT_TRUE(same_bits(direct.quote.buy_price, wrapped.quote.buy_price));
}

TEST(ReplayFeed, RejectsBadConstruction) {
  EXPECT_THROW(ReplayFeed({}, make_prices(3)), std::invalid_argument);
  EXPECT_THROW(ReplayFeed({{1, 2}, {3}}, make_prices(2)),
               std::invalid_argument);  // ragged
  EXPECT_THROW(ReplayFeed({{1, 2, 3}}, make_prices(2)),
               std::invalid_argument);  // prices too short
  EXPECT_THROW(ReplayFeed({{}}, make_prices(0)), std::invalid_argument);
}

// --- SyntheticFeed --------------------------------------------------------

TEST(SyntheticFeed, PollIsRepeatable) {
  SyntheticFeed feed(4, 99);
  SlotInput a;
  SlotInput b;
  for (std::size_t t : {std::size_t{0}, std::size_t{7}, std::size_t{1000}}) {
    ASSERT_EQ(feed.poll(t, a), FeedStatus::kReady);
    ASSERT_EQ(feed.poll(t, b), FeedStatus::kReady);
    EXPECT_TRUE(same_bits(a.quote.buy_price, b.quote.buy_price));
    EXPECT_TRUE(same_bits(a.quote.sell_price, b.quote.sell_price));
    EXPECT_EQ(a.workload, b.workload);
  }
}

TEST(SyntheticFeed, TwoInstancesWithSameSeedAgree) {
  SyntheticFeed first(3, 42);
  SyntheticFeed second(3, 42);
  SlotInput a;
  SlotInput b;
  for (std::size_t t = 0; t < 16; ++t) {
    ASSERT_EQ(first.poll(t, a), FeedStatus::kReady);
    ASSERT_EQ(second.poll(t, b), FeedStatus::kReady);
    EXPECT_TRUE(same_bits(a.quote.buy_price, b.quote.buy_price));
    EXPECT_EQ(a.workload, b.workload);
  }
}

TEST(SyntheticFeed, DifferentSeedsDiverge) {
  SyntheticFeed first(3, 1);
  SyntheticFeed second(3, 2);
  SlotInput a;
  SlotInput b;
  bool any_difference = false;
  for (std::size_t t = 0; t < 8 && !any_difference; ++t) {
    first.poll(t, a);
    second.poll(t, b);
    any_difference = !same_bits(a.quote.buy_price, b.quote.buy_price) ||
                     a.workload != b.workload;
  }
  EXPECT_TRUE(any_difference);
}

TEST(SyntheticFeed, WorkloadIsPositiveAndQuoteWellFormed) {
  SyntheticFeed feed(5, 7);
  SlotInput input;
  for (std::size_t t = 0; t < 32; ++t) {
    ASSERT_EQ(feed.poll(t, input), FeedStatus::kReady);
    EXPECT_GT(input.quote.buy_price, 0.0);
    EXPECT_GT(input.quote.sell_price, 0.0);
    EXPECT_LE(input.quote.sell_price, input.quote.buy_price);
    for (int count : input.workload) EXPECT_GE(count, 1);
  }
}

TEST(SyntheticFeed, RejectsZeroEdges) {
  EXPECT_THROW(SyntheticFeed(0, 1), std::invalid_argument);
}

// --- DirectoryTailFeed ----------------------------------------------------

class DirectoryTailTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "cea_tail_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ::mkdir(dir_.c_str(), 0755);
  }
  void TearDown() override {
    // Best-effort cleanup of the handful of files tests create.
    for (std::size_t t = 0; t < 8; ++t) {
      std::remove((dir_ + "/slot_" + std::to_string(t) + ".csv").c_str());
    }
    std::remove((dir_ + "/feed_end").c_str());
    ::rmdir(dir_.c_str());
  }
  void write_file(const std::string& name, const std::string& contents) {
    std::ofstream out(dir_ + "/" + name);
    out << contents;
  }
  std::string dir_;
};

TEST_F(DirectoryTailTest, PendingUntilPublishedThenReady) {
  DirectoryTailFeed feed(dir_, 3);
  SlotInput probe;
  EXPECT_EQ(feed.poll(0, probe), FeedStatus::kPending);

  SlotInput published;
  published.quote = {8.125, 7.25};
  published.workload = {100, 200, 300};
  DirectoryTailFeed::publish_slot(feed, 0, published);

  SlotInput got;
  ASSERT_EQ(feed.poll(0, got), FeedStatus::kReady);
  EXPECT_TRUE(same_bits(got.quote.buy_price, published.quote.buy_price));
  EXPECT_TRUE(same_bits(got.quote.sell_price, published.quote.sell_price));
  EXPECT_EQ(got.workload, published.workload);
  // Later slots are still pending.
  EXPECT_EQ(feed.poll(1, got), FeedStatus::kPending);
}

TEST_F(DirectoryTailTest, PublishRoundTripsArbitraryDoublesExactly) {
  DirectoryTailFeed feed(dir_, 2);
  SlotInput published;
  published.quote = {0.1 + 8.0, 1.0 / 3.0 + 7.0};  // not exactly representable
  published.workload = {1, 2147483647};
  DirectoryTailFeed::publish_slot(feed, 2, published);
  SlotInput got;
  ASSERT_EQ(feed.poll(2, got), FeedStatus::kReady);
  EXPECT_TRUE(same_bits(got.quote.buy_price, published.quote.buy_price));
  EXPECT_TRUE(same_bits(got.quote.sell_price, published.quote.sell_price));
  EXPECT_EQ(got.workload, published.workload);
}

TEST_F(DirectoryTailTest, EndMarkerEndsTheStream) {
  DirectoryTailFeed feed(dir_, 1);
  SlotInput input;
  EXPECT_EQ(feed.poll(5, input), FeedStatus::kPending);
  write_file("feed_end", "");
  EXPECT_EQ(feed.poll(5, input), FeedStatus::kEnd);
}

TEST_F(DirectoryTailTest, PublishedSlotWinsOverEndMarker) {
  // A slot that was published before the end marker is still served.
  DirectoryTailFeed feed(dir_, 1);
  SlotInput published;
  published.quote = {8.0, 7.0};
  published.workload = {5};
  DirectoryTailFeed::publish_slot(feed, 0, published);
  write_file("feed_end", "");
  SlotInput got;
  EXPECT_EQ(feed.poll(0, got), FeedStatus::kReady);
  EXPECT_EQ(feed.poll(1, got), FeedStatus::kEnd);
}

TEST_F(DirectoryTailTest, MalformedFilesThrow) {
  DirectoryTailFeed feed(dir_, 2);
  SlotInput input;
  write_file("slot_0.csv", "8.0,7.0\n");  // missing count line
  EXPECT_THROW(feed.poll(0, input), std::runtime_error);
  write_file("slot_1.csv", "8.0\n10,20\n");  // one price cell
  EXPECT_THROW(feed.poll(1, input), std::runtime_error);
  write_file("slot_2.csv", "7.0,8.0\n10,20\n");  // sell above buy
  EXPECT_THROW(feed.poll(2, input), std::runtime_error);
  write_file("slot_3.csv", "8.0,7.0\n10\n");  // wrong edge count
  EXPECT_THROW(feed.poll(3, input), std::runtime_error);
  write_file("slot_4.csv", "8.0,7.0\n10,3.5\n");  // non-integral count
  EXPECT_THROW(feed.poll(4, input), std::runtime_error);
  write_file("slot_5.csv", "8.0,7.0\n10,5000000000\n");  // beyond int range
  EXPECT_THROW(feed.poll(5, input), std::runtime_error);
  write_file("slot_6.csv", "8.0,7.0\n10,-4\n");  // non-positive count
  EXPECT_THROW(feed.poll(6, input), std::runtime_error);
}

TEST_F(DirectoryTailTest, RejectsZeroEdges) {
  EXPECT_THROW(DirectoryTailFeed(dir_, 0), std::invalid_argument);
}

TEST_F(DirectoryTailTest, MissingDirectoryThrowsAtConstruction) {
  // A missing directory can never become ready; constructing over one
  // must fail loudly instead of polling kPending forever.
  EXPECT_THROW(DirectoryTailFeed(dir_ + "_nonexistent", 2),
               std::invalid_argument);
  // A regular file is not a directory either.
  write_file("slot_0.csv", "8.0,7.0\n1,2\n");
  EXPECT_THROW(DirectoryTailFeed(dir_ + "/slot_0.csv", 2),
               std::invalid_argument);
}

TEST_F(DirectoryTailTest, EmptySlotFileThrows) {
  // An empty (or header-only) slot file is torn output from a broken
  // producer, not a pending slot: it must throw, never parse as data.
  DirectoryTailFeed feed(dir_, 2);
  SlotInput input;
  write_file("slot_0.csv", "");
  EXPECT_THROW(feed.poll(0, input), std::runtime_error);
}

TEST_F(DirectoryTailTest, PartiallyPublishedTmpFileStaysPending) {
  // publish_slot writes to "<slot>.csv.tmp" and renames; a concurrent
  // poll must only ever see kPending or the complete file, never the
  // half-written temp.
  DirectoryTailFeed feed(dir_, 2);
  write_file("slot_0.csv.tmp", "8.0,");  // torn mid-write
  SlotInput input;
  EXPECT_EQ(feed.poll(0, input), FeedStatus::kPending);
  std::remove((dir_ + "/slot_0.csv.tmp").c_str());
}

}  // namespace
}  // namespace cea::serve
