// Observability contract of the serving stack (DESIGN.md §13): the
// decision journal is bit-identical across serial and pooled execution,
// sealed segments are a bit-exact prefix of the uninterrupted run at any
// stop/restore boundary, watchdog alerts land in the journal, and the
// metrics exposition publishes well-formed Prometheus text.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "../integration/golden_trace.h"
#include "obs/journal.h"
#include "obs/slo.h"
#include "serve/controller.h"
#include "serve/daemon.h"
#include "serve/feed.h"
#include "serve/metrics_server.h"
#include "sim/experiment.h"
#include "util/thread_pool.h"

namespace cea::serve {
namespace {

TenantSpec make_spec(const std::string& name, std::uint64_t env_seed,
                     std::uint64_t run_seed, std::size_t horizon,
                     std::size_t edges = 3) {
  TenantSpec spec;
  spec.name = name;
  spec.scenario = sim::golden::golden_config();
  spec.scenario.num_edges = edges;
  spec.scenario.horizon = horizon;
  spec.scenario.workload.num_slots = horizon;
  spec.scenario.seed = env_seed;
  spec.combo = sim::ours_combo();
  spec.run_seed = run_seed;
  return spec;
}

std::string temp_dir(const std::string& tag) {
  const std::string dir =
      ::testing::TempDir() + "cea_obs_" + tag + "_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

void remove_dir(const std::string& dir) {
  for (std::size_t i = 0; i < 64; ++i) {
    std::remove(obs::segment_path(dir, i).c_str());
  }
  ::rmdir(dir.c_str());
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

#if defined(CEA_TELEMETRY)

DaemonReport run_daemon(const std::vector<TenantSpec>& specs,
                        const sim::SimOptions& options, std::uint64_t feed_seed,
                        std::size_t edges, DaemonConfig config) {
  ServeController controller(specs, options);
  SyntheticFeed feed(edges, feed_seed);
  ServeDaemon daemon(controller, feed, config);
  return daemon.run();
}

TEST(DecisionJournal, DaemonRunIsVerifiableAndCounted) {
  const std::string dir = temp_dir("basic");
  DaemonConfig config;
  config.max_slots = 16;
  config.journal_dir = dir;
  config.journal_every = 4;
  const DaemonReport report =
      run_daemon({make_spec("t0", 17, 7, 16)}, sim::SimOptions{}, 3, 3,
                 config);
  EXPECT_EQ(report.slots_processed, 16u);
  EXPECT_GE(report.journal_records, 16u);  // >= one slot record per slot
  EXPECT_GE(report.journal_segments, 4u);

  const obs::JournalStats stats = obs::verify_journal(dir);
  EXPECT_TRUE(stats.ok) << stats.error;
  EXPECT_EQ(stats.records, report.journal_records);
  EXPECT_EQ(stats.segments, report.journal_segments);

  // Every slot of every tenant appears exactly once, in slot order.
  std::uint64_t expected_slot = 0;
  for (const obs::JournalRecord& record : obs::read_journal(dir)) {
    if (record.kind != obs::JournalRecord::Kind::kSlot) continue;
    EXPECT_EQ(record.tenant, "t0");
    EXPECT_EQ(record.slot, expected_slot++);
    EXPECT_EQ(record.arena_overflows, 0u);  // slot path never fell back
    std::uint64_t edges_counted = 0;
    for (const std::uint64_t count : record.model_counts)
      edges_counted += count;
    EXPECT_EQ(edges_counted, 3u);
  }
  EXPECT_EQ(expected_slot, 16u);
  remove_dir(dir);
}

TEST(DecisionJournal, SerialAndPooledJournalsAreByteIdentical) {
  const std::string serial_dir = temp_dir("serial");
  const std::string pooled_dir = temp_dir("pooled");
  const std::vector<TenantSpec> specs = {make_spec("alpha", 17, 7, 24),
                                         make_spec("beta", 18, 8, 24)};
  DaemonConfig config;
  config.max_slots = 24;
  config.journal_every = 1;

  config.journal_dir = serial_dir;
  run_daemon(specs, sim::SimOptions{}, 5, 6, config);

  sim::SimOptions pooled_options;
  pooled_options.pool = &util::ThreadPool::global();
  config.journal_dir = pooled_dir;
  run_daemon(specs, pooled_options, 5, 6, config);

  // Not just equal records: the segment files themselves are identical.
  const obs::JournalStats serial_stats = obs::verify_journal(serial_dir);
  const obs::JournalStats pooled_stats = obs::verify_journal(pooled_dir);
  ASSERT_TRUE(serial_stats.ok) << serial_stats.error;
  ASSERT_TRUE(pooled_stats.ok) << pooled_stats.error;
  ASSERT_EQ(serial_stats.segments, pooled_stats.segments);
  for (std::size_t i = 0; i < serial_stats.segments; ++i) {
    EXPECT_EQ(read_bytes(obs::segment_path(serial_dir, i)),
              read_bytes(obs::segment_path(pooled_dir, i)))
        << "segment " << i;
  }
  remove_dir(serial_dir);
  remove_dir(pooled_dir);
}

TEST(DecisionJournal, StoppedRunJournalIsBitExactPrefixOfFullRun) {
  const std::string full_dir = temp_dir("full");
  const std::string stopped_dir = temp_dir("stopped");
  const std::vector<TenantSpec> specs = {make_spec("t0", 21, 9, 32)};
  DaemonConfig config;
  config.journal_every = 1;

  config.max_slots = 32;
  config.journal_dir = full_dir;
  run_daemon(specs, sim::SimOptions{}, 11, 3, config);

  config.max_slots = 0;
  config.stop_after_slots = 20;
  config.journal_dir = stopped_dir;
  run_daemon(specs, sim::SimOptions{}, 11, 3, config);

  const auto full = obs::read_journal_lines(full_dir);
  const auto stopped = obs::read_journal_lines(stopped_dir);
  ASSERT_FALSE(stopped.empty());
  ASSERT_LT(stopped.size(), full.size());
  for (std::size_t i = 0; i < stopped.size(); ++i) {
    EXPECT_EQ(stopped[i], full[i]) << "journal line " << i;
  }
  // Sealing every slot, the stopped run's segment files are byte-for-byte
  // the full run's first segments — the on-disk form of the SIGKILL
  // guarantee (a kill can only lose the open buffer, never a segment).
  const std::size_t stopped_segments = obs::verify_journal(stopped_dir).segments;
  for (std::size_t i = 0; i < stopped_segments; ++i) {
    EXPECT_EQ(read_bytes(obs::segment_path(stopped_dir, i)),
              read_bytes(obs::segment_path(full_dir, i)))
        << "segment " << i;
  }
  remove_dir(full_dir);
  remove_dir(stopped_dir);
}

TEST(DecisionJournal, KillRestoreRunRebuildsTheUninterruptedJournal) {
  const std::string straight_dir = temp_dir("straight");
  const std::string revived_dir = temp_dir("revived");
  const std::string ckpt = ::testing::TempDir() + "cea_obs_journal_ckpt";
  std::remove(ckpt.c_str());
  const std::vector<TenantSpec> specs = {make_spec("t0", 21, 9, 32)};

  DaemonConfig config;
  config.journal_every = 1;
  config.max_slots = 32;
  config.journal_dir = straight_dir;
  run_daemon(specs, sim::SimOptions{}, 11, 3, config);

  {  // First life: killed (gracefully) at slot 20 with a checkpoint.
    ServeController first(specs, sim::SimOptions{});
    SyntheticFeed feed(3, 11);
    DaemonConfig life;
    life.journal_every = 1;
    life.journal_dir = revived_dir;
    life.checkpoint_path = ckpt;
    life.stop_after_slots = 20;
    ServeDaemon daemon(first, feed, life);
    ASSERT_EQ(daemon.run().final_slot, 20u);
  }
  {  // Second life: restore and finish; the writer appends after the
    // surviving segments.
    ServeController second(specs, sim::SimOptions{});
    SyntheticFeed feed(3, 11);
    DaemonConfig life;
    life.journal_every = 1;
    life.journal_dir = revived_dir;
    life.checkpoint_path = ckpt;
    life.max_slots = 32;
    ServeDaemon daemon(second, feed, life);
    ASSERT_TRUE(daemon.restore_if_present());
    ASSERT_EQ(daemon.run().final_slot, 32u);
  }
  std::remove(ckpt.c_str());

  const auto straight = obs::read_journal_lines(straight_dir);
  const auto revived = obs::read_journal_lines(revived_dir);
  EXPECT_EQ(straight, revived);
  remove_dir(straight_dir);
  remove_dir(revived_dir);
}

TEST(SloIntegration, InsolvencyAlertsLandInJournalAndReport) {
  const std::string dir = temp_dir("alerts");
  DaemonConfig config;
  config.max_slots = 8;
  config.journal_dir = dir;
  // An impossible floor: every tenant is "insolvent" from slot 0, so the
  // alert path fires deterministically.
  config.slo.min_balance = 1e18;
  const DaemonReport report =
      run_daemon({make_spec("t0", 17, 7, 8)}, sim::SimOptions{}, 3, 3,
                 config);
  const auto kind =
      static_cast<std::size_t>(obs::SloKind::kAllowanceInsolvency);
  EXPECT_GE(report.alerts[kind], 1u);
  EXPECT_EQ(report.alerts_total, report.alerts[kind]);

  bool journaled = false;
  for (const obs::JournalRecord& record : obs::read_journal(dir)) {
    if (record.kind != obs::JournalRecord::Kind::kAlert) continue;
    EXPECT_EQ(record.alert, "allowance_insolvency");
    EXPECT_EQ(record.tenant, "t0");
    EXPECT_DOUBLE_EQ(record.threshold, 1e18);
    journaled = true;
  }
  EXPECT_TRUE(journaled);
  remove_dir(dir);
}

TEST(MetricsExposition, DaemonPublishesWellFormedPrometheusText) {
  const std::string path =
      ::testing::TempDir() + "cea_obs_metrics_page.prom";
  const std::string journal_dir = temp_dir("metrics");
  std::remove(path.c_str());
  DaemonConfig config;
  config.max_slots = 12;
  config.metrics_path = path;
  config.metrics_every = 4;
  config.journal_dir = journal_dir;  // journal gauges appear when journaling
  run_daemon({make_spec("t0", 17, 7, 12)}, sim::SimOptions{}, 3, 3, config);

  const std::string text = read_bytes(path);
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("cea_tenant_allowance_balance{tenant=\"t0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("cea_tenant_emission_total{tenant=\"t0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("cea_tenant_cap_burn_rate{tenant=\"t0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("cea_journal_records_sealed"), std::string::npos);

  // Minimal format check: every line is a comment or `name[{labels}] value`
  // with a parseable value.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE cea_", 0), 0u) << line;
      continue;
    }
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    EXPECT_TRUE(value == "NaN" || value == "+Inf" || value == "-Inf" ||
                value.find_first_not_of("0123456789+-.eE") ==
                    std::string::npos)
        << line;
  }
  std::remove(path.c_str());
  remove_dir(journal_dir);
}

TEST(MetricsExposition, TcpEndpointServesTheLatestPage) {
  MetricsServer server(0);  // ephemeral port
  ASSERT_GT(server.port(), 0);
  server.publish("# TYPE cea_up gauge\ncea_up 1\n");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, request, sizeof(request) - 1, 0),
            static_cast<ssize_t>(sizeof(request) - 1));
  std::string response;
  char buffer[512];
  ssize_t got = 0;
  while ((got = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<std::size_t>(got));
  }
  ::close(fd);
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("cea_up 1\n"), std::string::npos);
}

#else  // !CEA_TELEMETRY

TEST(DecisionJournal, ConfigIsInertWhenTelemetryCompiledOut) {
  // Under -DCEA_TELEMETRY=OFF the observability config fields exist but
  // attach nothing: the daemon runs normally and writes no journal.
  const std::string dir = temp_dir("off");
  ServeController controller({make_spec("t0", 17, 7, 8)}, sim::SimOptions{});
  SyntheticFeed feed(3, 3);
  DaemonConfig config;
  config.max_slots = 8;
  config.journal_dir = dir;
  ServeDaemon daemon(controller, feed, config);
  const DaemonReport report = daemon.run();
  EXPECT_EQ(report.slots_processed, 8u);
  EXPECT_EQ(report.journal_records, 0u);
  EXPECT_TRUE(obs::read_journal_lines(dir).empty());
  remove_dir(dir);
}

#endif  // CEA_TELEMETRY

}  // namespace
}  // namespace cea::serve
