#include "util/state_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <clocale>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "data/trace_io.h"
#include "util/csv.h"
#include "util/numio.h"
#include "util/rng.h"

namespace cea::util {
namespace {

// ---------------------------------------------------------------------------
// numio: locale-independent parsing / exact formatting
// ---------------------------------------------------------------------------

TEST(NumIo, ParsesDecimalForms) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("7.4", v));
  EXPECT_DOUBLE_EQ(v, 7.4);
  EXPECT_TRUE(parse_double("-1e-3", v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
  EXPECT_TRUE(parse_double("inf", v));
  EXPECT_TRUE(std::isinf(v));
  EXPECT_TRUE(parse_double("nan", v));
  EXPECT_TRUE(std::isnan(v));
}

TEST(NumIo, ParsesHexFloatForms) {
  double v = 0.0;
  ASSERT_TRUE(parse_double("0x1.8p+3", v));
  EXPECT_DOUBLE_EQ(v, 12.0);
  ASSERT_TRUE(parse_double("-0X1p-2", v));
  EXPECT_DOUBLE_EQ(v, -0.25);
}

TEST(NumIo, RejectsGarbage) {
  double v = 0.0;
  EXPECT_FALSE(parse_double("", v));
  EXPECT_FALSE(parse_double("abc", v));
  EXPECT_FALSE(parse_double("7.4x", v));   // trailing garbage
  EXPECT_FALSE(parse_double(" 7.4", v));   // leading whitespace
  EXPECT_FALSE(parse_double("7.4 ", v));   // trailing whitespace
  EXPECT_FALSE(parse_double("7,4", v));    // locale comma is never accepted
}

TEST(NumIo, ExactFormatRoundTripsBitForBit) {
  const std::vector<double> values = {
      0.0,
      -0.0,
      0.1,
      1.0 / 3.0,
      -12345.6789,
      1e308,
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::infinity(),
  };
  for (const double value : values) {
    double parsed = 0.0;
    const std::string text = format_double_exact(value);
    ASSERT_TRUE(parse_double(text, parsed)) << text;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(value),
              std::bit_cast<std::uint64_t>(parsed))
        << text;
  }
}

TEST(NumIo, IntegerParsersRejectSignAndOverflow) {
  std::uint64_t u = 0;
  EXPECT_TRUE(parse_u64("18446744073709551615", u));
  EXPECT_EQ(u, std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(parse_u64("18446744073709551616", u));  // overflow
  EXPECT_FALSE(parse_u64("-1", u));
  EXPECT_FALSE(parse_u64("12x", u));
  EXPECT_FALSE(parse_u64("", u));
  std::int64_t i = 0;
  EXPECT_TRUE(parse_i64("-42", i));
  EXPECT_EQ(i, -42);
  EXPECT_FALSE(parse_i64("9223372036854775808", i));  // overflow
}

// ---------------------------------------------------------------------------
// StateWriter / StateReader
// ---------------------------------------------------------------------------

TEST(StateIo, WriterReaderRoundTripAllTypes) {
  StateWriter writer;
  writer.write_u64("u", 42);
  writer.write_i64("i", -7);
  writer.write_bool("b", true);
  writer.write_double("d", 0.1);
  writer.write_string("s", "hello world");
  const std::vector<double> doubles = {1.5, -0.0, 1e-9};
  writer.write_doubles("ds", doubles);
  const std::vector<std::uint64_t> u64s = {0, 1, 99};
  writer.write_u64s("us", u64s);
  Rng rng(123);
  rng.normal();  // populate the Box-Muller cache so it must round-trip too
  writer.write_rng("r", rng);

  StateReader reader(writer.payload());
  EXPECT_EQ(reader.read_u64("u"), 42u);
  EXPECT_EQ(reader.read_i64("i"), -7);
  EXPECT_TRUE(reader.read_bool("b"));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(reader.read_double("d")),
            std::bit_cast<std::uint64_t>(0.1));
  EXPECT_EQ(reader.read_string("s"), "hello world");
  EXPECT_EQ(reader.read_doubles("ds", doubles.size()), doubles);
  EXPECT_EQ(reader.read_u64s("us", u64s.size()), u64s);
  Rng restored(0);
  reader.read_rng("r", restored);
  reader.expect_end();
  for (int k = 0; k < 32; ++k) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(rng.normal()),
              std::bit_cast<std::uint64_t>(restored.normal()));
  }
}

TEST(StateIo, ReaderThrowsOnKeyMismatch) {
  StateWriter writer;
  writer.write_u64("expected", 1);
  StateReader reader(writer.payload());
  EXPECT_THROW(reader.read_u64("other"), StateError);
}

TEST(StateIo, ReaderThrowsOnTypeConfusionAndPrematureEnd) {
  StateWriter writer;
  writer.write_string("s", "not a number");
  StateReader reader(writer.payload());
  EXPECT_THROW(reader.read_u64("s"), StateError);
  StateReader empty("");
  EXPECT_THROW(empty.read_u64("s"), StateError);
}

TEST(StateIo, ExpectEndThrowsOnTrailingData) {
  StateWriter writer;
  writer.write_u64("a", 1);
  writer.write_u64("b", 2);
  StateReader reader(writer.payload());
  reader.read_u64("a");
  EXPECT_FALSE(reader.at_end());
  EXPECT_THROW(reader.expect_end(), StateError);
}

TEST(StateIo, VectorCountMismatchThrows) {
  StateWriter writer;
  writer.write_doubles("v", std::vector<double>{1.0, 2.0});
  StateReader reader(writer.payload());
  EXPECT_THROW(reader.read_doubles("v", 3), StateError);
}

// ---------------------------------------------------------------------------
// Checkpoint envelope
// ---------------------------------------------------------------------------

TEST(Checkpoint, EncodeDecodeRoundTrip) {
  const std::string payload = "engine.slot u64 5\nengine.x d 0x1.8p+3\n";
  EXPECT_EQ(decode_checkpoint(encode_checkpoint(payload)), payload);
}

TEST(Checkpoint, DecodeRejectsBadMagic) {
  EXPECT_THROW(decode_checkpoint("NOT-A-CHECKPOINT v1 0 0\n"), StateError);
  EXPECT_THROW(decode_checkpoint(""), StateError);
}

TEST(Checkpoint, DecodeRejectsVersionMismatch) {
  std::string file = encode_checkpoint("k u64 1\n");
  const auto pos = file.find("v1");
  ASSERT_NE(pos, std::string::npos);
  file[pos + 1] = '9';
  EXPECT_THROW(decode_checkpoint(file), StateError);
}

TEST(Checkpoint, DecodeRejectsTruncation) {
  const std::string file = encode_checkpoint("key u64 123456789\n");
  EXPECT_THROW(decode_checkpoint(file.substr(0, file.size() - 4)), StateError);
}

TEST(Checkpoint, DecodeRejectsCorruptedPayloadByte) {
  std::string file = encode_checkpoint("key u64 123456789\n");
  file[file.size() - 3] ^= 0x01;  // flip a bit inside the payload
  EXPECT_THROW(decode_checkpoint(file), StateError);
}

class CheckpointFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "cea_ckpt_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  std::string path_;
};

TEST_F(CheckpointFileTest, WriteReadRoundTrip) {
  const std::string payload = "engine.slot u64 80\n";
  write_checkpoint_file(path_, payload);
  EXPECT_EQ(read_checkpoint_file(path_), payload);
  // No temp file is left behind after a successful atomic publish.
  std::ifstream tmp(path_ + ".tmp");
  EXPECT_FALSE(tmp.good());
}

TEST_F(CheckpointFileTest, OverwriteReplacesAtomically) {
  write_checkpoint_file(path_, "a u64 1\n");
  write_checkpoint_file(path_, "a u64 2\n");
  EXPECT_EQ(read_checkpoint_file(path_), "a u64 2\n");
}

TEST_F(CheckpointFileTest, ReadRejectsMissingFile) {
  EXPECT_THROW(read_checkpoint_file(path_ + ".does-not-exist"), StateError);
}

TEST_F(CheckpointFileTest, ReadRejectsTruncatedFile) {
  write_checkpoint_file(path_, "engine.slot u64 123456\n");
  std::string bytes;
  {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() - 5));
  }
  EXPECT_THROW(read_checkpoint_file(path_), StateError);
}

// ---------------------------------------------------------------------------
// Locale regression: every serialization path must ignore LC_NUMERIC.
// Skipped when the host lacks the de_DE.UTF-8 locale.
// ---------------------------------------------------------------------------

class LocaleGuard {
 public:
  explicit LocaleGuard(const char* name) {
    const char* current = std::setlocale(LC_ALL, nullptr);
    saved_ = current != nullptr ? current : "C";
    active_ = std::setlocale(LC_ALL, name) != nullptr;
  }
  ~LocaleGuard() { std::setlocale(LC_ALL, saved_.c_str()); }
  bool active() const noexcept { return active_; }

 private:
  std::string saved_;
  bool active_ = false;
};

#define CEA_REQUIRE_DE_LOCALE(guard)                                   \
  LocaleGuard guard("de_DE.UTF-8");                                    \
  if (!guard.active()) {                                               \
    GTEST_SKIP() << "de_DE.UTF-8 locale not installed on this host";   \
  }

TEST(LocaleRegression, NumIoIgnoresCommaLocale) {
  CEA_REQUIRE_DE_LOCALE(guard);
  double v = 0.0;
  ASSERT_TRUE(parse_double("7.4", v));
  EXPECT_DOUBLE_EQ(v, 7.4);
  EXPECT_FALSE(parse_double("7,4", v));
  EXPECT_EQ(format_double(0.5, 3).find(','), std::string::npos);
  const std::string exact = format_double_exact(0.1);
  EXPECT_EQ(exact.find(','), std::string::npos);
  double parsed = 0.0;
  ASSERT_TRUE(parse_double(exact, parsed));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(parsed),
            std::bit_cast<std::uint64_t>(0.1));
}

TEST(LocaleRegression, StateIoRoundTripsUnderCommaLocale) {
  CEA_REQUIRE_DE_LOCALE(guard);
  StateWriter writer;
  writer.write_double("d", 1.0 / 3.0);
  writer.write_doubles("v", std::vector<double>{0.1, -2.5e-7});
  StateReader reader(writer.payload());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(reader.read_double("d")),
            std::bit_cast<std::uint64_t>(1.0 / 3.0));
  const auto v = reader.read_doubles("v", 2);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(v[0]),
            std::bit_cast<std::uint64_t>(0.1));
}

TEST(LocaleRegression, CsvExactRowsUnderCommaLocale) {
  CEA_REQUIRE_DE_LOCALE(guard);
  const std::string path = ::testing::TempDir() + "cea_locale_csv.csv";
  {
    CsvWriter writer(path);
    writer.write_row_exact("row", {0.1, 7.4});
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  in.close();
  std::remove(path.c_str());
  // Three cells exactly: a comma-decimal "0,1" would add a fourth.
  EXPECT_EQ(std::count(line.begin(), line.end(), ','), 2);
  const auto second_comma = line.find(',', line.find(',') + 1);
  double parsed = 0.0;
  ASSERT_TRUE(parse_double(
      line.substr(line.find(',') + 1, second_comma - line.find(',') - 1),
      parsed));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(parsed),
            std::bit_cast<std::uint64_t>(0.1));
}

TEST(LocaleRegression, TraceIoRoundTripsUnderCommaLocale) {
  CEA_REQUIRE_DE_LOCALE(guard);
  const std::string workload_path =
      ::testing::TempDir() + "cea_locale_workload.csv";
  const std::string prices_path =
      ::testing::TempDir() + "cea_locale_prices.csv";
  Rng rng(5);
  data::WorkloadConfig config;
  config.num_slots = 16;
  const auto workload = data::generate_workload(3, config, rng);
  const auto prices = data::generate_prices(16, {}, rng);
  data::save_workload_csv(workload, workload_path);
  data::save_prices_csv(prices, prices_path);
  const auto workload_back = data::load_workload_csv(workload_path);
  const auto prices_back = data::load_prices_csv(prices_path);
  std::remove(workload_path.c_str());
  std::remove(prices_path.c_str());
  EXPECT_EQ(workload_back, workload);
  ASSERT_EQ(prices_back.size(), prices.size());
  for (std::size_t t = 0; t < prices.size(); ++t) {
    EXPECT_NEAR(prices_back.buy[t], prices.buy[t], 1e-9);
    EXPECT_NEAR(prices_back.sell[t], prices.sell[t], 1e-9);
  }
}

// Strict count validation in the workload loader (satellite: trace-I/O
// parsing fixes) — rejections must name the offending line.

class StrictWorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "cea_strict_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  void write(const std::string& contents) {
    std::ofstream out(path_);
    out << contents;
  }
  std::string path_;
};

TEST_F(StrictWorkloadTest, RejectsNonIntegralCount) {
  write("10,3.7,30\n");
  EXPECT_THROW(data::load_workload_csv(path_), std::runtime_error);
}

TEST_F(StrictWorkloadTest, RejectsCountBeyondIntRange) {
  write("10,5000000000,30\n");
  EXPECT_THROW(data::load_workload_csv(path_), std::runtime_error);
}

TEST_F(StrictWorkloadTest, ErrorNamesTheLine) {
  write("10,20,30\n40,bad,60\n");
  try {
    data::load_workload_csv(path_);
    FAIL() << "expected a parse failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace cea::util
