#include "sim/audit.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "bandit/random_policy.h"
#include "core/blocked_tsallis_inf.h"
#include "core/carbon_trader.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "trading/random_trader.h"

namespace cea::sim {
namespace {

SimConfig audit_config() {
  SimConfig config;
  config.num_edges = 3;
  config.horizon = 40;
  config.workload.num_slots = 40;
  config.workload.mean_samples = 300.0;
  config.loss_draw_cap = 64;
  config.seed = 31;
  return config;
}

bool has_site(const std::vector<audit::Violation>& violations,
              const std::string& site) {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const audit::Violation& v) { return v.site == site; });
}

class AuditRun : public ::testing::Test {
 protected:
  void SetUp() override { audit::clear(); }
  void TearDown() override { audit::clear(); }
};

TEST_F(AuditRun, CleanOnValidRun) {
  const auto env = Environment::make_parametric(audit_config());
  Simulator simulator(env);
  const auto result = simulator.run(core::BlockedTsallisInfPolicy::factory(),
                                    core::OnlineCarbonTrader::factory(), 1,
                                    "Ours");
  const auto violations = audit_run(env, result);
  EXPECT_TRUE(violations.empty()) << format_violations(violations);
}

TEST_F(AuditRun, CleanOnEveryBaselineCombo) {
  const auto env = Environment::make_parametric(audit_config());
  for (const auto& combo : all_combos()) {
    const auto result = run_combo(env, combo, 2);
    EXPECT_TRUE(audit_run(env, result).empty()) << combo.name;
  }
}

TEST_F(AuditRun, CleanOnAveragedRun) {
  const auto env = Environment::make_parametric(audit_config());
  const auto avg = run_combo_averaged(env, ours_combo(), 3, 100);
  const auto violations = audit_run(env, avg, /*averaged=*/true);
  EXPECT_TRUE(violations.empty()) << format_violations(violations);
}

TEST_F(AuditRun, DetectsTamperedTradingCost) {
  const auto env = Environment::make_parametric(audit_config());
  Simulator simulator(env);
  auto result = simulator.run(bandit::RandomPolicy::factory(),
                              trading::RandomTrader::factory(), 4, "x");
  audit::clear();  // keep only the tamper-induced violations
  result.trading_cost[7] += 0.5;
  const auto violations = audit_run(env, result);
  ASSERT_TRUE(has_site(violations, "audit.trading_cost_identity"))
      << format_violations(violations);
  const auto it =
      std::find_if(violations.begin(), violations.end(),
                   [](const audit::Violation& v) {
                     return v.site == "audit.trading_cost_identity";
                   });
  EXPECT_EQ(it->slot, 7u);
  EXPECT_NEAR(it->quantity, 0.5, 1e-9);
}

TEST_F(AuditRun, DetectsLedgerBreakViaViolationMismatch) {
  // Inflating a sell both breaks the holdings clamp and shifts the ledger
  // the terminal fit is computed from.
  auto config = audit_config();
  config.clamp_sales_to_holdings = true;
  const auto env = Environment::make_parametric(config);
  Simulator simulator(env);
  auto result = simulator.run(core::BlockedTsallisInfPolicy::factory(),
                              core::OnlineCarbonTrader::factory(), 5, "Ours");
  audit::clear();
  result.sells[3] += 1e6;
  const auto violations = audit_run(env, result);
  EXPECT_TRUE(has_site(violations, "audit.holdings_clamp") ||
              has_site(violations, "audit.trading_cost_identity"))
      << format_violations(violations);
}

TEST_F(AuditRun, DetectsOutOfBoxTrade) {
  const auto env = Environment::make_parametric(audit_config());
  Simulator simulator(env);
  auto result = simulator.run(bandit::RandomPolicy::factory(),
                              trading::RandomTrader::factory(), 6, "x");
  audit::clear();
  result.buys[2] = env.config().max_trade_per_slot + 1.0;
  result.trading_cost[2] = result.buys[2] * env.prices().buy[2] -
                           result.sells[2] * env.prices().sell[2];
  const auto violations = audit_run(env, result);
  ASSERT_TRUE(has_site(violations, "audit.trade_box"))
      << format_violations(violations);
}

TEST_F(AuditRun, DetectsSwitchCountAboveBound) {
  const auto env = Environment::make_parametric(audit_config());
  Simulator simulator(env);
  auto result = simulator.run(bandit::RandomPolicy::factory(),
                              trading::RandomTrader::factory(), 7, "x");
  audit::clear();
  result.total_switches = env.num_edges() * env.horizon();  // > I*(T-1)
  EXPECT_TRUE(has_site(audit_run(env, result), "audit.switch_bound"));
}

TEST_F(AuditRun, MirrorsIntoGlobalCollector) {
  const auto env = Environment::make_parametric(audit_config());
  Simulator simulator(env);
  auto result = simulator.run(bandit::RandomPolicy::factory(),
                              trading::RandomTrader::factory(), 8, "x");
  audit::clear();
  result.trading_cost[0] += 1.0;
  const auto violations = audit_run(env, result);
  ASSERT_FALSE(violations.empty());
  EXPECT_GE(audit::violation_count(), violations.size());
}

TEST_F(AuditRun, FormatIncludesSiteAndContext) {
  std::vector<audit::Violation> violations;
  violations.push_back({"audit.test_site", "something broke", 2, 17, -1.25});
  const auto text = format_violations(violations);
  EXPECT_NE(text.find("audit.test_site"), std::string::npos);
  EXPECT_NE(text.find("edge=2"), std::string::npos);
  EXPECT_NE(text.find("slot=17"), std::string::npos);
  EXPECT_NE(text.find("something broke"), std::string::npos);
}

TEST_F(AuditRun, FormatTruncatesLongLists) {
  std::vector<audit::Violation> violations(30, {"audit.x", "m", 0, 0, 0.0});
  const auto text = format_violations(violations, 5);
  EXPECT_NE(text.find("and 25 more"), std::string::npos);
}

}  // namespace
}  // namespace cea::sim
