// Degenerate-scenario robustness: single edge, single model, one-slot
// horizon, zero cap, huge cap, tiny workload, sales clamping.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "bandit/random_policy.h"
#include "core/regret.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "trading/random_trader.h"

namespace cea::sim {
namespace {

SimConfig tiny_config() {
  SimConfig config;
  config.num_edges = 1;
  config.horizon = 1;
  config.workload.num_slots = 1;
  config.workload.mean_samples = 5.0;
  config.seed = 3;
  return config;
}

TEST(EdgeCases, SingleSlotSingleEdge) {
  const auto env = Environment::make_parametric(tiny_config());
  Simulator simulator(env);
  const auto result = simulator.run(bandit::RandomPolicy::factory(),
                                    trading::RandomTrader::factory(), 1, "x");
  EXPECT_EQ(result.horizon(), 1u);
  EXPECT_EQ(result.total_switches, 0u);  // initial download is not a switch
  EXPECT_GT(result.total_inference_cost(), 0.0);
}

TEST(EdgeCases, SingleModel) {
  auto config = tiny_config();
  config.horizon = 20;
  config.workload.num_slots = 20;
  config.num_models = 1;
  const auto env = Environment::make_parametric(config);
  EXPECT_EQ(env.num_models(), 1u);
  const auto result = run_combo(env, ours_combo(), 2);
  EXPECT_EQ(result.selection_counts[0][0], 20u);
  // With one model there is nothing to switch to.
  EXPECT_EQ(result.total_switches, 0u);
}

TEST(EdgeCases, ZeroCapStillRuns) {
  auto config = tiny_config();
  config.horizon = 30;
  config.workload.num_slots = 30;
  config.carbon_cap = 0.0;
  const auto env = Environment::make_parametric(config);
  const auto result = run_combo(env, ours_combo(), 3);
  // Everything must be bought or violated; both costs are finite.
  EXPECT_TRUE(std::isfinite(result.settled_total_cost()));
  EXPECT_GE(result.violation(), 0.0);
}

TEST(EdgeCases, HugeCapMeansNoBuying) {
  auto config = tiny_config();
  config.horizon = 40;
  config.workload.num_slots = 40;
  config.carbon_cap = 1e9;
  const auto env = Environment::make_parametric(config);
  const auto result = run_combo(env, ours_combo(), 4);
  EXPECT_DOUBLE_EQ(result.violation(), 0.0);
  EXPECT_LT(result.total_buys(), 1.0);
}

TEST(EdgeCases, SalesClampedToHoldings) {
  // An always-sell trader cannot drive the allowance balance negative
  // through selling when the clamp is on.
  auto config = tiny_config();
  config.horizon = 50;
  config.workload.num_slots = 50;
  config.carbon_cap = 10.0;
  config.clamp_sales_to_holdings = true;
  const auto env = Environment::make_parametric(config);
  Simulator simulator(env);

  auto always_sell = [](const trading::TraderContext& context) {
    struct Seller final : trading::TradingPolicy {
      explicit Seller(double cap) : cap_(cap) {}
      trading::TradeDecision decide(std::size_t,
                                    const trading::TradeObservation&) override {
        return {0.0, cap_};
      }
      void feedback(std::size_t, double, const trading::TradeObservation&,
                    const trading::TradeDecision&) override {}
      std::string name() const override { return "Seller"; }
      double cap_;
    };
    return std::make_unique<Seller>(context.max_trade_per_slot);
  };
  const auto result = simulator.run(bandit::RandomPolicy::factory(),
                                    always_sell, 5, "seller");
  // Total sold cannot exceed initial cap (emissions only reduce holdings).
  EXPECT_LE(result.total_sells(), config.carbon_cap + 1e-9);
}

TEST(EdgeCases, UnclampedSalesAllowed) {
  auto config = tiny_config();
  config.horizon = 50;
  config.workload.num_slots = 50;
  config.carbon_cap = 10.0;
  config.clamp_sales_to_holdings = false;
  const auto env = Environment::make_parametric(config);
  Simulator simulator(env);
  auto always_sell = [](const trading::TraderContext& context) {
    struct Seller final : trading::TradingPolicy {
      explicit Seller(double cap) : cap_(cap) {}
      trading::TradeDecision decide(std::size_t,
                                    const trading::TradeObservation&) override {
        return {0.0, cap_};
      }
      void feedback(std::size_t, double, const trading::TradeObservation&,
                    const trading::TradeDecision&) override {}
      std::string name() const override { return "Seller"; }
      double cap_;
    };
    return std::make_unique<Seller>(context.max_trade_per_slot);
  };
  const auto result = simulator.run(bandit::RandomPolicy::factory(),
                                    always_sell, 5, "seller");
  EXPECT_GT(result.total_sells(), config.carbon_cap);
}

TEST(EdgeCases, OfflineOnTinyScenario) {
  auto config = tiny_config();
  config.horizon = 10;
  config.workload.num_slots = 10;
  const auto env = Environment::make_parametric(config);
  const auto offline = run_offline(env, 6);
  EXPECT_EQ(offline.horizon(), 10u);
  EXPECT_NEAR(core::fit(offline.emissions, offline.buys, offline.sells,
                        config.carbon_cap),
              0.0, 1e-6);
}

TEST(EdgeCases, ComparatorCostFiniteOnTinyScenario) {
  auto config = tiny_config();
  config.horizon = 5;
  config.workload.num_slots = 5;
  const auto env = Environment::make_parametric(config);
  EXPECT_TRUE(std::isfinite(comparator_cost(env, 7)));
}

}  // namespace
}  // namespace cea::sim
