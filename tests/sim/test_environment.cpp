#include "sim/environment.h"

#include <gtest/gtest.h>

#include <set>

namespace cea::sim {
namespace {

SimConfig small_config() {
  SimConfig config;
  config.num_edges = 4;
  config.horizon = 40;
  config.workload.num_slots = 40;
  config.workload.mean_samples = 200.0;
  config.seed = 7;
  return config;
}

TEST(Environment, ParametricBuildSizes) {
  const auto env = Environment::make_parametric(small_config());
  EXPECT_EQ(env.num_edges(), 4u);
  EXPECT_EQ(env.num_models(), 6u);
  EXPECT_EQ(env.horizon(), 40u);
  EXPECT_EQ(env.workload().size(), 4u);
  EXPECT_EQ(env.workload()[0].size(), 40u);
  EXPECT_EQ(env.prices().size(), 40u);
}

TEST(Environment, ModelsHaveDistinctLosses) {
  const auto env = Environment::make_parametric(small_config());
  std::set<double> means;
  for (const auto& m : env.models()) means.insert(m.profile.mean_loss());
  EXPECT_EQ(means.size(), env.num_models());
}

TEST(Environment, EnergyWithinConfiguredBand) {
  const auto config = small_config();
  const auto env = Environment::make_parametric(config);
  for (const auto& m : env.models()) {
    EXPECT_GE(m.energy_per_sample, config.energy_min);
    EXPECT_LE(m.energy_per_sample, config.energy_max);
  }
}

TEST(Environment, ComputationCostsWithinBand) {
  const auto config = small_config();
  const auto env = Environment::make_parametric(config);
  for (std::size_t i = 0; i < env.num_edges(); ++i) {
    for (std::size_t n = 0; n < env.num_models(); ++n) {
      EXPECT_GE(env.computation_cost(i, n), config.comp_cost_min);
      EXPECT_LE(env.computation_cost(i, n), config.comp_cost_max);
    }
  }
}

TEST(Environment, SwitchingWeightScalesU) {
  auto config = small_config();
  const auto env1 = Environment::make_parametric(config);
  config.switching_weight = 3.0;
  const auto env3 = Environment::make_parametric(config);
  for (std::size_t i = 0; i < env1.num_edges(); ++i)
    EXPECT_NEAR(env3.switching_cost(i), 3.0 * env1.switching_cost(i), 1e-12);
}

TEST(Environment, GreedyEnergyChoiceIsNotBestModel) {
  // The parametric family is constructed so that the lowest-energy model is
  // not also the lowest-loss model (otherwise Greedy would be optimal and
  // the paper's Fig. 8 contrast would vanish).
  const auto env = Environment::make_parametric(small_config());
  std::size_t lowest_energy = 0;
  for (std::size_t n = 1; n < env.num_models(); ++n)
    if (env.models()[n].energy_per_sample <
        env.models()[lowest_energy].energy_per_sample)
      lowest_energy = n;
  std::size_t distinct = 0;
  for (std::size_t i = 0; i < env.num_edges(); ++i)
    if (env.best_model(i) != lowest_energy) ++distinct;
  EXPECT_GT(distinct, 0u);
}

TEST(Environment, BestModelMinimizesLossPlusCost) {
  const auto env = Environment::make_parametric(small_config());
  for (std::size_t i = 0; i < env.num_edges(); ++i) {
    const std::size_t star = env.best_model(i);
    const double best = env.models()[star].profile.mean_loss() +
                        env.computation_cost(i, star);
    for (std::size_t n = 0; n < env.num_models(); ++n) {
      EXPECT_LE(best, env.models()[n].profile.mean_loss() +
                          env.computation_cost(i, n) + 1e-12);
    }
  }
}

TEST(Environment, SuboptimalityGapsNonNegative) {
  const auto env = Environment::make_parametric(small_config());
  for (std::size_t i = 0; i < env.num_edges(); ++i) {
    EXPECT_DOUBLE_EQ(env.suboptimality_gap(i, env.best_model(i)), 0.0);
    for (std::size_t n = 0; n < env.num_models(); ++n)
      EXPECT_GE(env.suboptimality_gap(i, n), 0.0);
  }
}

TEST(Environment, DeterministicForSeed) {
  const auto a = Environment::make_parametric(small_config());
  const auto b = Environment::make_parametric(small_config());
  EXPECT_EQ(a.workload(), b.workload());
  EXPECT_EQ(a.prices().buy, b.prices().buy);
  for (std::size_t i = 0; i < a.num_edges(); ++i)
    EXPECT_DOUBLE_EQ(a.switching_cost(i), b.switching_cost(i));
}

TEST(Environment, FromProfilesUsesGivenTables) {
  Rng rng(3);
  std::vector<data::LossProfile> profiles;
  profiles.push_back(
      data::make_parametric_profile("a", 0.3, 0.05, 0.9, 1.0, 512, rng));
  profiles.push_back(
      data::make_parametric_profile("b", 0.9, 0.05, 0.4, 4.0, 512, rng));
  auto config = small_config();
  const auto env = Environment::from_profiles(config, std::move(profiles));
  EXPECT_EQ(env.num_models(), 2u);
  EXPECT_EQ(env.models()[0].name, "a");
  // The larger model gets the higher per-sample energy.
  EXPECT_GT(env.models()[1].energy_per_sample,
            env.models()[0].energy_per_sample);
}

TEST(Environment, TransferEnergyProportionalToSize) {
  const auto env = Environment::make_parametric(small_config());
  for (std::size_t i = 0; i < env.num_edges(); ++i) {
    for (std::size_t n = 1; n < env.num_models(); ++n) {
      if (env.models()[n].size_mb > env.models()[n - 1].size_mb) {
        EXPECT_GT(env.transfer_energy(i, n), env.transfer_energy(i, n - 1));
      }
    }
  }
}

}  // namespace
}  // namespace cea::sim
