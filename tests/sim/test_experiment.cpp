#include "sim/experiment.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/regret.h"

namespace cea::sim {
namespace {

SimConfig small_config() {
  SimConfig config;
  config.num_edges = 3;
  config.horizon = 60;
  config.workload.num_slots = 60;
  config.workload.mean_samples = 400.0;
  config.carbon_cap = 30.0;
  config.loss_draw_cap = 64;
  config.seed = 21;
  return config;
}

TEST(Experiment, TwelveBaselineCombos) {
  const auto combos = baseline_combos();
  ASSERT_EQ(combos.size(), 12u);
  std::set<std::string> names;
  for (const auto& c : combos) names.insert(c.name);
  EXPECT_EQ(names.size(), 12u);
  EXPECT_TRUE(names.count("Ran-Ran"));
  EXPECT_TRUE(names.count("UCB-LY"));
  EXPECT_TRUE(names.count("TINF-TH"));
  EXPECT_TRUE(names.count("Greedy-LY"));
}

TEST(Experiment, AllCombosIncludesOursFirst) {
  const auto combos = all_combos();
  ASSERT_EQ(combos.size(), 13u);
  EXPECT_EQ(combos[0].name, "Ours");
}

TEST(Experiment, RunComboProducesResult) {
  const auto env = Environment::make_parametric(small_config());
  const auto result = run_combo(env, ours_combo(), 1);
  EXPECT_EQ(result.horizon(), 60u);
  EXPECT_EQ(result.algorithm, "Ours");
  // Total cost can be negative when the scenario has allowance surplus to
  // sell; the physical components must still be positive.
  EXPECT_GT(result.total_inference_cost(), 0.0);
  EXPECT_GT(result.total_switching_cost(), 0.0);
  EXPECT_TRUE(std::isfinite(result.total_cost()));
}

TEST(Experiment, AveragedRunSmoothsVariance) {
  const auto env = Environment::make_parametric(small_config());
  const auto combo = ours_combo();
  const auto avg = run_combo_averaged(env, combo, 4, 100);
  EXPECT_EQ(avg.horizon(), 60u);
  EXPECT_GT(avg.total_inference_cost(), 0.0);
  EXPECT_TRUE(std::isfinite(avg.total_cost()));
}

TEST(Experiment, OfflineUsesBestModels) {
  const auto env = Environment::make_parametric(small_config());
  const auto result = run_offline(env, 1);
  EXPECT_EQ(result.algorithm, "Offline");
  for (std::size_t i = 0; i < env.num_edges(); ++i) {
    const std::size_t star = env.best_model(i);
    EXPECT_EQ(result.selection_counts[i][star], 60u);
  }
  // Offline holds the best model from slot 0; the initial download is not
  // counted as a switch.
  EXPECT_EQ(result.total_switches, 0u);
}

TEST(Experiment, OfflineSatisfiesCarbonNeutrality) {
  const auto env = Environment::make_parametric(small_config());
  const auto result = run_offline(env, 2);
  const double violation =
      core::fit(result.emissions, result.buys, result.sells,
                env.config().carbon_cap);
  EXPECT_NEAR(violation, 0.0, 1e-5);
}

TEST(Experiment, OfflineBeatsRandomBaseline) {
  const auto env = Environment::make_parametric(small_config());
  const auto offline = run_offline_averaged(env, 3, 10);
  const auto combos = baseline_combos();
  const auto& ran_ran = combos.front();
  ASSERT_EQ(ran_ran.name, "Ran-Ran");
  const auto random = run_combo_averaged(env, ran_ran, 3, 10);
  EXPECT_LT(offline.total_cost(), random.total_cost());
}

TEST(Experiment, OursBeatsRandomBaseline) {
  const auto env = Environment::make_parametric(small_config());
  const auto ours = run_combo_averaged(env, ours_combo(), 3, 20);
  const auto combos = baseline_combos();
  const auto random = run_combo_averaged(env, combos.front(), 3, 20);
  EXPECT_LT(ours.total_cost(), random.total_cost());
}

}  // namespace
}  // namespace cea::sim
