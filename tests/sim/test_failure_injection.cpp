// Failure injection: outage slots (zero workload), price spikes beyond the
// calibrated band, and pathological traces must neither crash the
// simulator nor break its accounting invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "core/regret.h"
#include "sim/experiment.h"
#include "sim/simulator.h"

namespace cea::sim {
namespace {

SimConfig base_config() {
  SimConfig config;
  config.num_edges = 3;
  config.horizon = 60;
  config.workload.num_slots = 60;
  config.workload.mean_samples = 500.0;
  config.carbon_cap = 60.0;
  config.loss_draw_cap = 32;
  config.seed = 41;
  return config;
}

TEST(FailureInjection, EdgeOutageSlots) {
  // Edge 1 goes dark (zero arrivals) for a third of the horizon.
  auto env = Environment::make_parametric(base_config());
  auto workload = env.workload();
  for (std::size_t t = 20; t < 40; ++t) workload[1][t] = 0;
  env.replace_traces(std::move(workload), {});
  const auto result = run_combo(env, ours_combo(), 3);
  EXPECT_EQ(result.horizon(), 60u);
  for (std::size_t t = 0; t < 60; ++t) {
    EXPECT_TRUE(std::isfinite(result.inference_cost[t]));
    EXPECT_GE(result.accuracy[t], 0.0);
    EXPECT_LE(result.accuracy[t], 1.0);
  }
  // Outage reduces the recorded workload in those slots.
  EXPECT_LT(result.workload[25], result.workload[5] * 1.5);
}

TEST(FailureInjection, TotalBlackoutSlot) {
  // Every edge dark in one slot: accuracy is defined as 0, emissions only
  // from downloads, and nothing crashes.
  auto env = Environment::make_parametric(base_config());
  auto workload = env.workload();
  for (auto& trace : workload) trace[30] = 0;
  env.replace_traces(std::move(workload), {});
  const auto result = run_combo(env, ours_combo(), 4);
  EXPECT_DOUBLE_EQ(result.workload[30], 0.0);
  EXPECT_DOUBLE_EQ(result.accuracy[30], 0.0);
  EXPECT_GE(result.emissions[30], 0.0);
  EXPECT_TRUE(std::isfinite(result.settled_total_cost()));
}

TEST(FailureInjection, PriceSpike) {
  // A 10x price spike mid-horizon: traders stay in the box, costs finite,
  // and the online trader buys less during the spike than around it.
  auto env = Environment::make_parametric(base_config());
  data::PriceSeries prices = env.prices();
  for (std::size_t t = 25; t < 35; ++t) {
    prices.buy[t] *= 10.0;
    prices.sell[t] = 0.9 * prices.buy[t];
  }
  env.replace_traces({}, std::move(prices));
  const auto result = run_combo(env, ours_combo(), 5);
  for (std::size_t t = 0; t < 60; ++t) {
    EXPECT_LE(result.buys[t], env.config().max_trade_per_slot + 1e-9);
    EXPECT_TRUE(std::isfinite(result.trading_cost[t]));
  }
  double spike_buys = 0.0, around_buys = 0.0;
  for (std::size_t t = 26; t < 35; ++t) spike_buys += result.buys[t];
  for (std::size_t t = 45; t < 54; ++t) around_buys += result.buys[t];
  EXPECT_LE(spike_buys, around_buys + 1.0);
}

TEST(FailureInjection, PriceCollapse) {
  // Prices collapse to near zero: selling becomes worthless; violation
  // accounting still coherent.
  auto env = Environment::make_parametric(base_config());
  data::PriceSeries prices = env.prices();
  for (std::size_t t = 0; t < prices.size(); ++t) {
    prices.buy[t] = 0.01;
    prices.sell[t] = 0.009;
  }
  env.replace_traces({}, std::move(prices));
  const auto result = run_combo(env, ours_combo(), 6);
  EXPECT_TRUE(std::isfinite(result.settled_total_cost()));
  // Allowances are ~free: the trader ends close to neutral.
  EXPECT_LT(result.violation(), 40.0);
}

TEST(FailureInjection, ExtremeWorkloadSpike) {
  auto env = Environment::make_parametric(base_config());
  auto workload = env.workload();
  workload[0][10] = 5000000;  // 10000x a normal slot
  env.replace_traces(std::move(workload), {});
  const auto result = run_combo(env, ours_combo(), 7);
  EXPECT_TRUE(std::isfinite(result.emissions[10]));
  EXPECT_GT(result.emissions[10], result.emissions[9] * 10.0);
}

}  // namespace
}  // namespace cea::sim
