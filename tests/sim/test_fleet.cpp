// Fleet-scale contract of the arena-backed SoA slot engine: serial and
// pooled edge-sharded execution are bit-identical (up to 10k edges x 160
// slots — the tentpole gate), every shard grain reduces identically, and
// the slot path never overflows its up-front arena reservation.
#include <gtest/gtest.h>

#include "data/workload.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "util/thread_pool.h"

namespace cea::sim {
namespace {

void expect_bit_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.inference_cost, b.inference_cost);
  EXPECT_EQ(a.switching_cost, b.switching_cost);
  EXPECT_EQ(a.trading_cost, b.trading_cost);
  EXPECT_EQ(a.emissions, b.emissions);
  EXPECT_EQ(a.buys, b.buys);
  EXPECT_EQ(a.sells, b.sells);
  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.selection_counts, b.selection_counts);
  EXPECT_EQ(a.total_switches, b.total_switches);
}

/// fig03's scenario prorated to `edges` (like fig04/perf_fleet), with the
/// loss-draw cap lowered so the 10k-edge gate stays a fast test: the cap
/// only bounds per-slot sampling work, every engine mode applies it
/// identically, so bit-identity is unaffected.
Environment fleet_environment(std::size_t edges,
                              data::WorkloadKind kind =
                                  data::WorkloadKind::kDiurnal) {
  SimConfig config;
  config.num_edges = edges;
  config.carbon_cap = 50.0 * static_cast<double>(edges);
  config.max_trade_per_slot = 2.5 * static_cast<double>(edges);
  config.loss_draw_cap = 16;
  config.seed = 42;
  config.workload.kind = kind;
  return Environment::make_parametric(config);
}

TEST(FleetEngine, TenThousandEdgesSerialVsPooledBitIdentical) {
  // The tentpole acceptance gate: 10,000 edges x 160 slots, SoA fleet
  // policy, pooled run bit-identical to the serial run, zero arena
  // overflows on both.
  const auto env = fleet_environment(10000);
  const auto combo = ours_combo();
  util::ThreadPool pool(4);
  const auto serial = run_combo(env, combo, 3);
  const auto pooled = run_combo_pooled(env, combo, 3, &pool);
  expect_bit_identical(serial, pooled);
  EXPECT_EQ(serial.arena_overflows, 0u);
  EXPECT_EQ(pooled.arena_overflows, 0u);
}

TEST(FleetEngine, ShardGrainDoesNotChangeResults) {
  // edge_shard_grain is purely a scheduling knob: the serial edge-ordered
  // reduction makes every grain (including grain >= num_edges, which runs
  // as one shard) bit-identical.
  const auto env = fleet_environment(300);
  const auto combo = ours_combo();
  const auto reference = run_combo(env, combo, 5);
  util::ThreadPool pool(3);
  for (std::size_t grain : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                            std::size_t{1000}}) {
    const auto sharded = run_combo_pooled(env, combo, 5, &pool, grain);
    expect_bit_identical(reference, sharded);
    EXPECT_EQ(sharded.arena_overflows, 0u) << "grain " << grain;
  }
}

TEST(FleetEngine, BatchSolveOnAndOffBitIdentical) {
  // The cross-edge presolve sweep (slot-arena batch_edges list +
  // TsallisBatchSolver) must reproduce the per-edge internal solves.
  const auto env = fleet_environment(100);
  const auto combo = ours_combo();
  const Simulator with_batch(env, {.cross_edge_batch_solve = true});
  const Simulator without_batch(env, {.cross_edge_batch_solve = false});
  const auto a =
      with_batch.run_fleet(combo.fleet_policy, combo.trader, 9, combo.name);
  const auto b = without_batch.run_fleet(combo.fleet_policy, combo.trader, 9,
                                         combo.name);
  expect_bit_identical(a, b);
  EXPECT_EQ(a.arena_overflows, 0u);
  EXPECT_EQ(b.arena_overflows, 0u);
}

TEST(FleetEngine, HeavyTailWorkloadSerialVsPooledBitIdentical) {
  // The keyed heavy-tailed generator drives the engine the same way the
  // diurnal one does; pooled execution stays bit-identical under it.
  const auto env = fleet_environment(500, data::WorkloadKind::kHeavyTail);
  const auto combo = ours_combo();
  util::ThreadPool pool(2);
  expect_bit_identical(run_combo(env, combo, 1),
                       run_combo_pooled(env, combo, 1, &pool));
}

TEST(FleetEngine, FlashCrowdWorkloadSerialVsPooledBitIdentical) {
  const auto env = fleet_environment(500, data::WorkloadKind::kFlashCrowd);
  const auto combo = ours_combo();
  util::ThreadPool pool(2);
  expect_bit_identical(run_combo(env, combo, 1),
                       run_combo_pooled(env, combo, 1, &pool));
}

TEST(FleetEngine, ZeroOverflowsAcrossEngineModes) {
  // The arena reservation covers every engine mode's slot path: serial,
  // pooled, fixed-choice, and the per-sample reference mode.
  const auto env = fleet_environment(50);
  const auto combo = ours_combo();
  EXPECT_EQ(run_combo(env, combo, 2).arena_overflows, 0u);
  util::ThreadPool pool(2);
  EXPECT_EQ(run_combo_pooled(env, combo, 2, &pool).arena_overflows, 0u);
  const Simulator simulator(env);
  const std::vector<std::size_t> choice(env.num_edges(), 0);
  EXPECT_EQ(simulator.run_fixed(choice, combo.trader, 2, "fixed")
                .arena_overflows,
            0u);
  const Simulator per_sample(env, {.per_sample_draws = true});
  EXPECT_EQ(per_sample.run(combo.policy, combo.trader, 2, combo.name)
                .arena_overflows,
            0u);
}

TEST(FleetEngine, AveragedPooledMatchesAveragedSerial) {
  // The experiment-level pooled helper reduces run averages identically to
  // the serial helper (same seeds, serial run loop, pooled inner engine).
  const auto env = fleet_environment(40);
  const auto combo = ours_combo();
  util::ThreadPool pool(3);
  const auto serial = run_combo_averaged(env, combo, 4, 100);
  const auto pooled = run_combo_averaged_pooled(env, combo, 4, 100, &pool);
  EXPECT_EQ(serial.inference_cost, pooled.inference_cost);
  EXPECT_EQ(serial.trading_cost, pooled.trading_cost);
  EXPECT_EQ(serial.accuracy, pooled.accuracy);
  EXPECT_EQ(serial.selection_counts, pooled.selection_counts);
  EXPECT_EQ(serial.total_switches, pooled.total_switches);
}

}  // namespace
}  // namespace cea::sim
