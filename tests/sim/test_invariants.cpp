// Parameterized simulator invariants across scenario regimes: accounting
// identities that must hold for every algorithm and configuration.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "bandit/random_policy.h"
#include "core/blocked_tsallis_inf.h"
#include "core/carbon_trader.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "trading/lyapunov_trader.h"
#include "trading/random_trader.h"

namespace cea::sim {
namespace {

struct ScenarioCase {
  std::string name;
  std::size_t edges;
  std::size_t horizon;
  double mean_samples;
  double cap;
  double emission_rate;
  double switching_weight;
  std::size_t shift_slot;
};

class SimulatorInvariants : public ::testing::TestWithParam<ScenarioCase> {
 protected:
  Environment make_env() const {
    const auto& p = GetParam();
    SimConfig config;
    config.num_edges = p.edges;
    config.horizon = p.horizon;
    config.workload.num_slots = p.horizon;
    config.workload.mean_samples = p.mean_samples;
    config.carbon_cap = p.cap;
    config.emission_rate = p.emission_rate;
    config.switching_weight = p.switching_weight;
    config.loss_shift_slot = p.shift_slot;
    config.loss_draw_cap = 32;
    config.seed = 23;
    return Environment::make_parametric(config);
  }
};

TEST_P(SimulatorInvariants, AccountingIdentitiesHold) {
  const auto env = make_env();
  Simulator simulator(env);
  const std::vector<std::pair<bandit::PolicyFactory,
                              trading::TraderFactory>> algos = {
      {bandit::RandomPolicy::factory(), trading::RandomTrader::factory()},
      {core::BlockedTsallisInfPolicy::factory(),
       core::OnlineCarbonTrader::factory()},
      {core::BlockedTsallisInfPolicy::factory(),
       trading::LyapunovTrader::factory()},
  };
  for (std::size_t a = 0; a < algos.size(); ++a) {
    const auto result =
        simulator.run(algos[a].first, algos[a].second, 5 + a, "case");

    // 1. Series lengths.
    ASSERT_EQ(result.horizon(), env.horizon());

    // 2. Selection counts: every edge hosts exactly one model per slot.
    for (const auto& counts : result.selection_counts) {
      std::size_t total = 0;
      for (auto c : counts) total += c;
      EXPECT_EQ(total, env.horizon());
    }

    // 3. Workload recorded equals the trace totals.
    for (std::size_t t = 0; t < env.horizon(); ++t) {
      double expected = 0.0;
      for (std::size_t i = 0; i < env.num_edges(); ++i)
        expected += env.workload()[i][t];
      EXPECT_NEAR(result.workload[t], expected, 1e-9);
    }

    // 4. Trading cost identity per slot.
    for (std::size_t t = 0; t < env.horizon(); ++t) {
      EXPECT_NEAR(result.trading_cost[t],
                  result.buys[t] * env.prices().buy[t] -
                      result.sells[t] * env.prices().sell[t],
                  1e-9);
    }

    // 5. Liquidity box respected.
    for (std::size_t t = 0; t < env.horizon(); ++t) {
      EXPECT_GE(result.buys[t], 0.0);
      EXPECT_LE(result.buys[t], env.config().max_trade_per_slot + 1e-9);
      EXPECT_GE(result.sells[t], 0.0);
      EXPECT_LE(result.sells[t], env.config().max_trade_per_slot + 1e-9);
    }

    // 6. Holdings clamp: the allowance balance never goes negative
    //    through selling (emissions may drive it negative).
    double balance = env.config().carbon_cap;
    for (std::size_t t = 0; t < env.horizon(); ++t) {
      EXPECT_LE(result.sells[t], std::max(0.0, balance + result.buys[t]) + 1e-9)
          << "slot " << t;
      balance += result.buys[t] - result.sells[t] - result.emissions[t];
    }

    // 7. Emissions positive; accuracy in [0, 1]; switches bounded.
    for (std::size_t t = 0; t < env.horizon(); ++t) {
      EXPECT_GT(result.emissions[t], 0.0);
      EXPECT_GE(result.accuracy[t], 0.0);
      EXPECT_LE(result.accuracy[t], 1.0);
    }
    // The initial download is not a switch, so at most I*(T-1) switches.
    EXPECT_LE(result.total_switches, env.num_edges() * (env.horizon() - 1));

    // 8. Settled cost identity.
    EXPECT_NEAR(result.settled_total_cost(),
                result.total_cost() +
                    result.violation() * result.settlement_price,
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, SimulatorInvariants,
    ::testing::Values(
        ScenarioCase{"default_like", 4, 60, 2000.0, 120.0, 500.0, 1.0, 0},
        ScenarioCase{"surplus", 3, 50, 200.0, 5000.0, 500.0, 1.0, 0},
        ScenarioCase{"deep_deficit", 3, 50, 8000.0, 10.0, 1000.0, 1.0, 0},
        ScenarioCase{"heavy_switching", 4, 60, 1000.0, 100.0, 500.0, 8.0, 0},
        ScenarioCase{"with_drift", 4, 60, 1000.0, 100.0, 500.0, 1.0, 30},
        ScenarioCase{"single_edge", 1, 40, 1000.0, 50.0, 500.0, 1.0, 0}),
    [](const ::testing::TestParamInfo<ScenarioCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace cea::sim
