#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace cea::sim {
namespace {

RunResult make_result() {
  RunResult r;
  r.algorithm = "test";
  r.inference_cost = {1.0, 2.0};
  r.switching_cost = {0.5, 0.0};
  r.trading_cost = {3.0, -1.0};
  r.emissions = {4.0, 5.0};
  r.buys = {2.0, 0.0};
  r.sells = {0.0, 1.0};
  r.accuracy = {0.8, 0.6};
  r.workload = {100.0, 300.0};
  r.selection_counts = {{1, 1}};
  r.total_switches = 1;
  return r;
}

TEST(RunResult, SlotTotalsAndCumulative) {
  const auto r = make_result();
  const auto slot = r.slot_total_cost();
  ASSERT_EQ(slot.size(), 2u);
  EXPECT_DOUBLE_EQ(slot[0], 4.5);
  EXPECT_DOUBLE_EQ(slot[1], 1.0);
  const auto cum = r.cumulative_total_cost();
  EXPECT_DOUBLE_EQ(cum[1], 5.5);
  EXPECT_DOUBLE_EQ(r.total_cost(), 5.5);
}

TEST(RunResult, ComponentTotals) {
  const auto r = make_result();
  EXPECT_DOUBLE_EQ(r.total_inference_cost(), 3.0);
  EXPECT_DOUBLE_EQ(r.total_switching_cost(), 0.5);
  EXPECT_DOUBLE_EQ(r.total_trading_cost(), 2.0);
  EXPECT_DOUBLE_EQ(r.total_emissions(), 9.0);
  EXPECT_DOUBLE_EQ(r.total_buys(), 2.0);
  EXPECT_DOUBLE_EQ(r.total_sells(), 1.0);
}

TEST(RunResult, WorkloadWeightedAccuracy) {
  const auto r = make_result();
  EXPECT_NEAR(r.mean_accuracy(), (0.8 * 100 + 0.6 * 300) / 400.0, 1e-12);
}

TEST(RunResult, UnitPurchaseCost) {
  const auto r = make_result();
  // net quantity 1, net cost 2 -> unit cost 2.
  EXPECT_DOUBLE_EQ(r.unit_purchase_cost(), 2.0);
}

TEST(RunResult, UnitPurchaseCostZeroNet) {
  auto r = make_result();
  r.buys = {1.0, 0.0};
  r.sells = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(r.unit_purchase_cost(), 0.0);
}

TEST(RunResult, UnitPurchaseCostNetSellerIsZero) {
  // A net seller's "unit purchase cost" is undefined; convention: 0.
  auto r = make_result();
  r.buys = {0.5, 0.0};
  r.sells = {0.0, 2.0};
  r.trading_cost = {-1.0, -2.0};  // earned money selling surplus
  EXPECT_DOUBLE_EQ(r.unit_purchase_cost(), 0.0);
}

TEST(RunResult, UnitPurchaseCostNegativeWhenEarningWhileAccumulating) {
  // Net buyer that bought low and sold high: negative unit cost is the
  // documented sign convention (earned money per net unit acquired).
  auto r = make_result();
  r.buys = {3.0, 0.0};
  r.sells = {0.0, 1.0};
  r.trading_cost = {3.0, -7.0};  // bought 3 @ 1, sold 1 @ 7
  EXPECT_DOUBLE_EQ(r.unit_purchase_cost(), -2.0);  // -4 / 2
}

TEST(AverageRuns, AveragesSeries) {
  auto a = make_result();
  auto b = make_result();
  for (auto& v : b.inference_cost) v *= 3.0;
  const auto avg = average_runs({a, b});
  EXPECT_DOUBLE_EQ(avg.inference_cost[0], 2.0);  // (1+3)/2
  EXPECT_DOUBLE_EQ(avg.inference_cost[1], 4.0);  // (2+6)/2
}

TEST(AverageRuns, AveragesSelectionCountsAndSwitches) {
  // Two runs of the same scenario: the averaged result must stay on a
  // single run's scale (counts averaged, not summed).
  auto a = make_result();
  auto b = make_result();
  b.selection_counts = {{2, 0}};
  b.total_switches = 3;
  const auto avg = average_runs({a, b});
  EXPECT_EQ(avg.selection_counts[0][0], 2u);  // llround((1+2)/2) = 2
  EXPECT_EQ(avg.selection_counts[0][1], 1u);  // llround((1+0)/2) = 1
  EXPECT_EQ(avg.total_switches, 2u);
}

TEST(AverageRuns, SelectionCountsRoundToNearest) {
  auto a = make_result();
  auto b = make_result();
  auto c = make_result();
  a.selection_counts = {{2, 0}};
  b.selection_counts = {{0, 2}};
  c.selection_counts = {{0, 2}};
  const auto avg = average_runs({a, b, c});
  EXPECT_EQ(avg.selection_counts[0][0], 1u);  // llround(2/3) = 1
  EXPECT_EQ(avg.selection_counts[0][1], 1u);  // llround(4/3) = 1
}

TEST(AverageRuns, SingleRunIdentity) {
  const auto r = make_result();
  const auto avg = average_runs({r});
  EXPECT_EQ(avg.inference_cost, r.inference_cost);
  EXPECT_EQ(avg.total_switches, r.total_switches);
}

}  // namespace
}  // namespace cea::sim
