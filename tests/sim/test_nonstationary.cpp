// Tests of the concept-drift injection (SimConfig::loss_shift_slot).
#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/simulator.h"
#include "trading/random_trader.h"

namespace cea::sim {
namespace {

SimConfig shifting_config(std::size_t shift_slot) {
  SimConfig config;
  config.num_edges = 2;
  config.horizon = 80;
  config.workload.num_slots = 80;
  config.workload.mean_samples = 300.0;
  config.loss_draw_cap = 64;
  config.loss_shift_slot = shift_slot;
  config.seed = 5;
  return config;
}

TEST(Nonstationary, ZeroShiftSlotDisablesDrift) {
  const auto env_a = Environment::make_parametric(shifting_config(0));
  SimConfig no_field = shifting_config(0);
  const auto env_b = Environment::make_parametric(no_field);
  Simulator sim_a(env_a), sim_b(env_b);
  const std::vector<std::size_t> fixed = {0, 0};
  const auto a = sim_a.run_fixed(fixed, trading::RandomTrader::factory(), 3,
                                 "a");
  const auto b = sim_b.run_fixed(fixed, trading::RandomTrader::factory(), 3,
                                 "b");
  EXPECT_EQ(a.inference_cost, b.inference_cost);
}

TEST(Nonstationary, InferenceCostFlipsAtShift) {
  // Hosting the best pre-shift model becomes hosting the worst post-shift.
  const std::size_t shift = 40;
  const auto env = Environment::make_parametric(shifting_config(shift));
  Simulator simulator(env);
  const std::vector<std::size_t> best_fixed = {env.best_model(0),
                                               env.best_model(1)};
  const auto result = simulator.run_fixed(
      best_fixed, trading::RandomTrader::factory(), 3, "fixed-best");
  // Post-shift per-slot inference cost strictly exceeds pre-shift.
  EXPECT_GT(result.inference_cost[shift + 1],
            result.inference_cost[shift - 1]);
}

TEST(Nonstationary, ShiftTargetMirrorsLossRanks) {
  const auto env = Environment::make_parametric(shifting_config(0));
  // Best maps to worst and vice versa; the mapping is an involution.
  std::size_t best = 0, worst = 0;
  for (std::size_t n = 1; n < env.num_models(); ++n) {
    if (env.models()[n].profile.mean_loss() <
        env.models()[best].profile.mean_loss())
      best = n;
    if (env.models()[n].profile.mean_loss() >
        env.models()[worst].profile.mean_loss())
      worst = n;
  }
  EXPECT_EQ(env.shift_target(best), worst);
  EXPECT_EQ(env.shift_target(worst), best);
  for (std::size_t n = 0; n < env.num_models(); ++n)
    EXPECT_EQ(env.shift_target(env.shift_target(n)), n);
}

TEST(Nonstationary, AccuracyDropsAtShiftForFixedChoice) {
  // Host the lowest-loss model: post-shift it inherits the worst model's
  // loss distribution, so accuracy collapses.
  const std::size_t shift = 40;
  const auto env = Environment::make_parametric(shifting_config(shift));
  Simulator simulator(env);
  std::size_t best = 0;
  for (std::size_t n = 1; n < env.num_models(); ++n) {
    if (env.models()[n].profile.mean_loss() <
        env.models()[best].profile.mean_loss())
      best = n;
  }
  const std::vector<std::size_t> fixed = {best, best};
  const auto result = simulator.run_fixed(
      fixed, trading::RandomTrader::factory(), 3, "fixed-best-loss");
  double pre = 0.0, post = 0.0;
  for (std::size_t t = 0; t < shift; ++t) pre += result.accuracy[t];
  for (std::size_t t = shift; t < 80; ++t) post += result.accuracy[t];
  EXPECT_GT(pre / 40.0, post / 40.0 + 0.1);
}

TEST(Nonstationary, OursRecoversAfterShift) {
  // The blocked bandit keeps exploring, so accuracy in the final quarter
  // must improve over the quarter right after the shift (recovery trend);
  // averaged over several runs to damp sampling noise.
  SimConfig config = shifting_config(100);
  config.horizon = 400;
  config.workload.num_slots = 400;
  const auto env = Environment::make_parametric(config);
  const auto ours = run_combo_averaged(env, ours_combo(), 5, 7);
  double just_after = 0.0, late = 0.0;
  for (std::size_t t = 100; t < 200; ++t) just_after += ours.accuracy[t];
  for (std::size_t t = 300; t < 400; ++t) late += ours.accuracy[t];
  EXPECT_GT(late / 100.0, just_after / 100.0);
}

}  // namespace
}  // namespace cea::sim
