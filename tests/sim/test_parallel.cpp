#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace cea::sim {
namespace {

SimConfig small_config() {
  SimConfig config;
  config.num_edges = 4;
  config.horizon = 60;
  config.workload.num_slots = 60;
  config.workload.mean_samples = 300.0;
  config.loss_draw_cap = 64;
  config.seed = 9;
  return config;
}

TEST(ParallelRunner, MatchesSerialBitForBit) {
  const auto env = Environment::make_parametric(small_config());
  const auto combo = ours_combo();
  const auto serial = run_combo_averaged(env, combo, 6, 100);
  const auto parallel = run_combo_averaged_parallel(env, combo, 6, 100, 3);
  EXPECT_EQ(serial.inference_cost, parallel.inference_cost);
  EXPECT_EQ(serial.buys, parallel.buys);
  EXPECT_EQ(serial.accuracy, parallel.accuracy);
  EXPECT_EQ(serial.total_switches, parallel.total_switches);
  EXPECT_EQ(serial.selection_counts, parallel.selection_counts);
}

TEST(ParallelRunner, SingleThreadWorks) {
  const auto env = Environment::make_parametric(small_config());
  const auto combo = ours_combo();
  const auto serial = run_combo_averaged(env, combo, 3, 7);
  const auto parallel = run_combo_averaged_parallel(env, combo, 3, 7, 1);
  EXPECT_EQ(serial.inference_cost, parallel.inference_cost);
}

TEST(ParallelRunner, MoreThreadsThanRuns) {
  const auto env = Environment::make_parametric(small_config());
  const auto combo = ours_combo();
  const auto parallel = run_combo_averaged_parallel(env, combo, 2, 7, 16);
  EXPECT_EQ(parallel.horizon(), 60u);
}

TEST(ParallelRunner, DefaultThreadCount) {
  const auto env = Environment::make_parametric(small_config());
  const auto combo = ours_combo();
  const auto serial = run_combo_averaged(env, combo, 4, 21);
  const auto parallel = run_combo_averaged_parallel(env, combo, 4, 21);
  EXPECT_EQ(serial.trading_cost, parallel.trading_cost);
}

}  // namespace
}  // namespace cea::sim
