#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/simulator.h"
#include "trading/random_trader.h"
#include "util/thread_pool.h"

namespace cea::sim {
namespace {

void expect_bit_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.inference_cost, b.inference_cost);
  EXPECT_EQ(a.switching_cost, b.switching_cost);
  EXPECT_EQ(a.trading_cost, b.trading_cost);
  EXPECT_EQ(a.emissions, b.emissions);
  EXPECT_EQ(a.buys, b.buys);
  EXPECT_EQ(a.sells, b.sells);
  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.selection_counts, b.selection_counts);
  EXPECT_EQ(a.total_switches, b.total_switches);
}

SimConfig small_config() {
  SimConfig config;
  config.num_edges = 4;
  config.horizon = 60;
  config.workload.num_slots = 60;
  config.workload.mean_samples = 300.0;
  config.loss_draw_cap = 64;
  config.seed = 9;
  return config;
}

TEST(ParallelRunner, MatchesSerialBitForBit) {
  const auto env = Environment::make_parametric(small_config());
  const auto combo = ours_combo();
  const auto serial = run_combo_averaged(env, combo, 6, 100);
  const auto parallel = run_combo_averaged_parallel(env, combo, 6, 100, 3);
  EXPECT_EQ(serial.inference_cost, parallel.inference_cost);
  EXPECT_EQ(serial.buys, parallel.buys);
  EXPECT_EQ(serial.accuracy, parallel.accuracy);
  EXPECT_EQ(serial.total_switches, parallel.total_switches);
  EXPECT_EQ(serial.selection_counts, parallel.selection_counts);
}

TEST(ParallelRunner, SingleThreadWorks) {
  const auto env = Environment::make_parametric(small_config());
  const auto combo = ours_combo();
  const auto serial = run_combo_averaged(env, combo, 3, 7);
  const auto parallel = run_combo_averaged_parallel(env, combo, 3, 7, 1);
  EXPECT_EQ(serial.inference_cost, parallel.inference_cost);
}

TEST(ParallelRunner, MoreThreadsThanRuns) {
  const auto env = Environment::make_parametric(small_config());
  const auto combo = ours_combo();
  const auto parallel = run_combo_averaged_parallel(env, combo, 2, 7, 16);
  EXPECT_EQ(parallel.horizon(), 60u);
}

TEST(ParallelRunner, DefaultThreadCount) {
  const auto env = Environment::make_parametric(small_config());
  const auto combo = ours_combo();
  const auto serial = run_combo_averaged(env, combo, 4, 21);
  const auto parallel = run_combo_averaged_parallel(env, combo, 4, 21);
  EXPECT_EQ(serial.trading_cost, parallel.trading_cost);
}

// --- Per-edge parallel engine (SimOptions::pool) ------------------------
//
// These tests are the determinism contract of the batched engine: because
// loss draws are keyed by (run_seed, edge, t) and per-edge partials are
// reduced serially in edge order, Simulator::run with ANY thread count is
// bit-identical to the serial engine. They also put real concurrent load
// on the thread pool, which is what the -DCEA_SANITIZE=thread build
// race-checks (see EXPERIMENTS.md).

TEST(ParallelEngine, PoolRunBitIdenticalToSerialAnyThreadCount) {
  const auto env = Environment::make_parametric(small_config());
  const auto combo = ours_combo();
  const Simulator serial(env);
  const auto reference = serial.run(combo.policy, combo.trader, 5, "Ours");
  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{7}}) {
    util::ThreadPool pool(threads);
    const Simulator parallel(env, {.pool = &pool});
    const auto result = parallel.run(combo.policy, combo.trader, 5, "Ours");
    expect_bit_identical(reference, result);
  }
}

TEST(ParallelEngine, PoolRunFixedBitIdenticalToSerial) {
  const auto env = Environment::make_parametric(small_config());
  const std::vector<std::size_t> choice(env.num_edges(), 1);
  const Simulator serial(env);
  util::ThreadPool pool(3);
  const Simulator parallel(env, {.pool = &pool});
  auto trader = trading::RandomTrader::factory();
  expect_bit_identical(serial.run_fixed(choice, trader, 11, "fixed"),
                       parallel.run_fixed(choice, trader, 11, "fixed"));
}

TEST(ParallelEngine, RepeatedPoolRunsAreDeterministic) {
  const auto env = Environment::make_parametric(small_config());
  const auto combo = ours_combo();
  util::ThreadPool pool(4);
  const Simulator parallel(env, {.pool = &pool});
  const auto a = parallel.run(combo.policy, combo.trader, 9, "Ours");
  const auto b = parallel.run(combo.policy, combo.trader, 9, "Ours");
  expect_bit_identical(a, b);
}

TEST(ParallelEngine, PerSampleReferenceModeStillRuns) {
  // The legacy per-sample path (kept for the perf bench) must keep
  // producing valid results; it uses a different (shared) draw stream, so
  // only invariants are checked, not equality.
  const auto env = Environment::make_parametric(small_config());
  const auto combo = ours_combo();
  const Simulator legacy(env, {.per_sample_draws = true});
  const auto result = legacy.run(combo.policy, combo.trader, 5, "Ours");
  EXPECT_EQ(result.horizon(), 60u);
  for (double a : result.accuracy) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(ParallelEngine, NestedRunLevelAndEdgeLevelParallelism) {
  // run_combo_averaged_parallel over the global pool, where each run's
  // simulator also uses the pool, must neither deadlock nor change
  // results (the nested parallel_for runs inline).
  const auto env = Environment::make_parametric(small_config());
  const auto combo = ours_combo();
  const auto reference = run_combo_averaged(env, combo, 4, 100);
  std::vector<RunResult> runs(4);
  util::ThreadPool& pool = util::ThreadPool::global();
  pool.parallel_for(4, [&](std::size_t r) {
    const Simulator simulator(env, {.pool = &pool});
    runs[r] = simulator.run(combo.policy, combo.trader, 100 + 1 + r,
                            combo.name);
  });
  expect_bit_identical(reference, average_runs(runs));
}

}  // namespace
}  // namespace cea::sim
