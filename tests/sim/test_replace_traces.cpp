#include <gtest/gtest.h>

#include "sim/environment.h"

namespace cea::sim {
namespace {

SimConfig small_config() {
  SimConfig config;
  config.num_edges = 3;
  config.horizon = 20;
  config.workload.num_slots = 20;
  config.seed = 13;
  return config;
}

data::WorkloadTraces make_traces(std::size_t edges, std::size_t slots,
                                 int value) {
  return data::WorkloadTraces(edges, std::vector<int>(slots, value));
}

data::PriceSeries make_prices(std::size_t slots, double buy) {
  data::PriceSeries series;
  series.buy.assign(slots, buy);
  series.sell.assign(slots, 0.9 * buy);
  return series;
}

TEST(ReplaceTraces, InjectsWorkload) {
  auto env = Environment::make_parametric(small_config());
  env.replace_traces(make_traces(3, 20, 777), {});
  EXPECT_EQ(env.workload()[1][5], 777);
  // Prices untouched.
  EXPECT_GT(env.prices().buy[0], 0.0);
}

TEST(ReplaceTraces, InjectsPrices) {
  auto env = Environment::make_parametric(small_config());
  const auto original_workload = env.workload();
  env.replace_traces({}, make_prices(20, 8.8));
  EXPECT_DOUBLE_EQ(env.prices().buy[3], 8.8);
  EXPECT_DOUBLE_EQ(env.prices().sell[3], 7.92);
  EXPECT_EQ(env.workload(), original_workload);
}

TEST(ReplaceTraces, RejectsWrongEdgeCount) {
  auto env = Environment::make_parametric(small_config());
  EXPECT_THROW(env.replace_traces(make_traces(2, 20, 5), {}),
               std::invalid_argument);
}

TEST(ReplaceTraces, RejectsShortTrace) {
  auto env = Environment::make_parametric(small_config());
  EXPECT_THROW(env.replace_traces(make_traces(3, 10, 5), {}),
               std::invalid_argument);
}

TEST(ReplaceTraces, RejectsShortPrices) {
  auto env = Environment::make_parametric(small_config());
  EXPECT_THROW(env.replace_traces({}, make_prices(5, 8.0)),
               std::invalid_argument);
}

TEST(ReplaceTraces, LongerTracesAccepted) {
  // Real data may cover more slots than the configured horizon.
  auto env = Environment::make_parametric(small_config());
  EXPECT_NO_THROW(env.replace_traces(make_traces(3, 50, 5),
                                     make_prices(50, 7.0)));
}

}  // namespace
}  // namespace cea::sim
