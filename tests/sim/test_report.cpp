#include "sim/report.h"

#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace cea::sim {
namespace {

SimConfig small_config() {
  SimConfig config;
  config.num_edges = 3;
  config.horizon = 40;
  config.workload.num_slots = 40;
  config.workload.mean_samples = 300.0;
  config.loss_draw_cap = 32;
  config.seed = 17;
  return config;
}

TEST(Report, ComparisonContainsAllAlgorithmsSortedByCost) {
  const auto env = Environment::make_parametric(small_config());
  const auto ours = run_combo(env, ours_combo(), 1);
  const auto baseline = run_combo(env, baseline_combos().front(), 1);
  const std::string report = comparison_report(env, {baseline, ours});
  EXPECT_NE(report.find("Ours"), std::string::npos);
  EXPECT_NE(report.find("Ran-Ran"), std::string::npos);
  EXPECT_NE(report.find("Scenario: 3 edges"), std::string::npos);
  // Sorted ascending by settled cost: the cheaper one appears first.
  const auto pos_a = report.find(ours.algorithm + " ");
  const auto pos_b = report.find(baseline.algorithm);
  const bool ours_cheaper =
      ours.settled_total_cost() < baseline.settled_total_cost();
  EXPECT_EQ(pos_a < pos_b, ours_cheaper);
}

TEST(Report, RunReportSectionsPresent) {
  const auto env = Environment::make_parametric(small_config());
  const auto ours = run_combo(env, ours_combo(), 2);
  const std::string report = run_report(env, ours);
  EXPECT_NE(report.find("Cost breakdown"), std::string::npos);
  EXPECT_NE(report.find("Per-edge hosting"), std::string::npos);
  EXPECT_NE(report.find("Trading"), std::string::npos);
  EXPECT_NE(report.find("hindsight"), std::string::npos);
  // One hosting row per edge.
  std::size_t rows = 0;
  for (std::size_t i = 0; i < env.num_edges(); ++i) {
    if (report.find("\n" + std::to_string(i) + " ") != std::string::npos)
      ++rows;
  }
  EXPECT_EQ(rows, env.num_edges());
}

TEST(Report, EmptyResultsHandled) {
  const auto env = Environment::make_parametric(small_config());
  const std::string report = comparison_report(env, {});
  EXPECT_NE(report.find("Scenario"), std::string::npos);
}

}  // namespace
}  // namespace cea::sim
