#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "bandit/greedy_policy.h"
#include "bandit/random_policy.h"
#include "core/blocked_tsallis_inf.h"
#include "core/carbon_trader.h"
#include "trading/random_trader.h"

namespace cea::sim {
namespace {

SimConfig small_config() {
  SimConfig config;
  config.num_edges = 3;
  config.horizon = 50;
  config.workload.num_slots = 50;
  config.workload.mean_samples = 300.0;
  config.loss_draw_cap = 64;
  config.seed = 11;
  return config;
}

TEST(Simulator, SeriesHaveHorizonLength) {
  const auto env = Environment::make_parametric(small_config());
  Simulator simulator(env);
  const auto result = simulator.run(bandit::RandomPolicy::factory(),
                                    trading::RandomTrader::factory(), 1,
                                    "Ran-Ran");
  EXPECT_EQ(result.horizon(), 50u);
  EXPECT_EQ(result.emissions.size(), 50u);
  EXPECT_EQ(result.accuracy.size(), 50u);
  EXPECT_EQ(result.selection_counts.size(), 3u);
  EXPECT_EQ(result.algorithm, "Ran-Ran");
}

TEST(Simulator, SelectionCountsSumToHorizon) {
  const auto env = Environment::make_parametric(small_config());
  Simulator simulator(env);
  const auto result = simulator.run(bandit::RandomPolicy::factory(),
                                    trading::RandomTrader::factory(), 2,
                                    "Ran-Ran");
  for (const auto& counts : result.selection_counts) {
    std::size_t total = 0;
    for (auto c : counts) total += c;
    EXPECT_EQ(total, 50u);
  }
}

TEST(Simulator, EmissionsPositiveAndScaleWithRate) {
  auto config = small_config();
  const auto env1 = Environment::make_parametric(config);
  config.emission_rate *= 2.0;
  const auto env2 = Environment::make_parametric(config);
  Simulator sim1(env1), sim2(env2);
  const auto r1 = sim1.run(bandit::GreedyEnergyPolicy::factory(),
                           trading::RandomTrader::factory(), 3, "a");
  const auto r2 = sim2.run(bandit::GreedyEnergyPolicy::factory(),
                           trading::RandomTrader::factory(), 3, "b");
  EXPECT_GT(r1.total_emissions(), 0.0);
  EXPECT_NEAR(r2.total_emissions(), 2.0 * r1.total_emissions(),
              0.05 * r2.total_emissions());
}

TEST(Simulator, GreedyNeverSwitchesAfterFirstSlot) {
  const auto env = Environment::make_parametric(small_config());
  Simulator simulator(env);
  const auto result = simulator.run(bandit::GreedyEnergyPolicy::factory(),
                                    trading::RandomTrader::factory(), 4,
                                    "Greedy-Ran");
  // The initial download is not a switch: greedy holds one model forever,
  // so no slot ever charges u_i.
  EXPECT_EQ(result.total_switches, 0u);
  for (std::size_t t = 0; t < result.horizon(); ++t)
    EXPECT_DOUBLE_EQ(result.switching_cost[t], 0.0);
}

TEST(Simulator, RandomPolicySwitchesOften) {
  const auto env = Environment::make_parametric(small_config());
  Simulator simulator(env);
  const auto result = simulator.run(bandit::RandomPolicy::factory(),
                                    trading::RandomTrader::factory(), 5,
                                    "Ran-Ran");
  // 6 models: expect ~5/6 switch probability per slot per edge.
  EXPECT_GT(result.total_switches, 50u * 3u / 2u);
}

TEST(Simulator, AccuracyWithinUnitInterval) {
  const auto env = Environment::make_parametric(small_config());
  Simulator simulator(env);
  const auto result = simulator.run(bandit::RandomPolicy::factory(),
                                    trading::RandomTrader::factory(), 6,
                                    "Ran-Ran");
  for (double a : result.accuracy) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(Simulator, DeterministicForSameRunSeed) {
  const auto env = Environment::make_parametric(small_config());
  Simulator simulator(env);
  const auto a = simulator.run(core::BlockedTsallisInfPolicy::factory(),
                               core::OnlineCarbonTrader::factory(), 7, "Ours");
  const auto b = simulator.run(core::BlockedTsallisInfPolicy::factory(),
                               core::OnlineCarbonTrader::factory(), 7, "Ours");
  EXPECT_EQ(a.inference_cost, b.inference_cost);
  EXPECT_EQ(a.buys, b.buys);
  EXPECT_EQ(a.total_switches, b.total_switches);
}

TEST(Simulator, DifferentRunSeedsDiffer) {
  const auto env = Environment::make_parametric(small_config());
  Simulator simulator(env);
  const auto a = simulator.run(bandit::RandomPolicy::factory(),
                               trading::RandomTrader::factory(), 8, "x");
  const auto b = simulator.run(bandit::RandomPolicy::factory(),
                               trading::RandomTrader::factory(), 9, "x");
  EXPECT_NE(a.selection_counts, b.selection_counts);
}

TEST(Simulator, RunFixedHoldsChoices) {
  const auto env = Environment::make_parametric(small_config());
  Simulator simulator(env);
  const std::vector<std::size_t> choice = {2, 2, 2};
  const auto result = simulator.run_fixed(
      choice, trading::RandomTrader::factory(), 10, "fixed");
  for (const auto& counts : result.selection_counts) {
    EXPECT_EQ(counts[2], 50u);
  }
  // Holding a fixed model never switches; the initial download is free of
  // switching cost (it still pays transfer energy).
  EXPECT_EQ(result.total_switches, 0u);
}

TEST(Simulator, TradingCostMatchesDecisionsAndPrices) {
  const auto env = Environment::make_parametric(small_config());
  Simulator simulator(env);
  const auto result = simulator.run(bandit::GreedyEnergyPolicy::factory(),
                                    trading::RandomTrader::factory(), 11,
                                    "g");
  for (std::size_t t = 0; t < result.horizon(); ++t) {
    const double expected = result.buys[t] * env.prices().buy[t] -
                            result.sells[t] * env.prices().sell[t];
    EXPECT_NEAR(result.trading_cost[t], expected, 1e-9);
  }
}

TEST(Simulator, InferenceCostUsesExpectedLoss) {
  // With a fixed model everywhere, the inference cost per slot is exactly
  // sum_i (mean_loss + v_{i,n}).
  const auto env = Environment::make_parametric(small_config());
  Simulator simulator(env);
  const std::vector<std::size_t> choice = {1, 1, 1};
  const auto result = simulator.run_fixed(
      choice, trading::RandomTrader::factory(), 12, "fixed");
  double expected = 0.0;
  for (std::size_t i = 0; i < 3; ++i)
    expected += env.models()[1].profile.mean_loss() +
                env.computation_cost(i, 1);
  for (std::size_t t = 0; t < result.horizon(); ++t)
    EXPECT_NEAR(result.inference_cost[t], expected, 1e-9);
}

TEST(Simulator, LossDrawCapZeroDrawsAllSamples) {
  auto config = small_config();
  config.loss_draw_cap = 0;
  config.workload.mean_samples = 50.0;  // keep it cheap
  const auto env = Environment::make_parametric(config);
  Simulator simulator(env);
  const auto result = simulator.run(bandit::GreedyEnergyPolicy::factory(),
                                    trading::RandomTrader::factory(), 13,
                                    "g");
  EXPECT_EQ(result.horizon(), config.horizon);
}

}  // namespace
}  // namespace cea::sim
