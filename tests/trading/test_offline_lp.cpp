#include "trading/offline_lp_trader.h"

#include <gtest/gtest.h>

#include <vector>

namespace cea::trading {
namespace {

TraderContext make_context(std::size_t horizon, double cap, double max_trade) {
  TraderContext context;
  context.horizon = horizon;
  context.carbon_cap = cap;
  context.max_trade_per_slot = max_trade;
  return context;
}

TEST(OfflineLp, NoTradingNeededUnderCap) {
  // Emissions fully covered by the cap; constant prices forbid arbitrage
  // (sell < buy), so the optimum is pure selling of the surplus.
  const std::vector<double> buy = {10.0, 10.0, 10.0};
  const std::vector<double> sell = {9.0, 9.0, 9.0};
  const std::vector<double> emissions = {1.0, 1.0, 1.0};
  const auto plan =
      solve_offline_trading(make_context(3, 100.0, 5.0), buy, sell, emissions);
  ASSERT_TRUE(plan.feasible);
  double total_buy = 0.0;
  for (double z : plan.buy) total_buy += z;
  EXPECT_NEAR(total_buy, 0.0, 1e-7);
  // Selling surplus at 9 is profitable: expect max selling (capped).
  double total_sell = 0.0;
  for (double w : plan.sell) total_sell += w;
  EXPECT_NEAR(total_sell, 15.0, 1e-6);  // 3 slots x cap 5
  EXPECT_NEAR(plan.cost, -15.0 * 9.0, 1e-5);
}

TEST(OfflineLp, BuysAtCheapestSlotBeforeDeficit) {
  // Cap 0, emission only in slot 2; prices cheapest at slot 0. The prefix
  // constraint allows buying early, so all purchasing lands on slot 0.
  const std::vector<double> buy = {6.0, 9.0, 10.0};
  const std::vector<double> sell = {0.1, 0.1, 0.1};  // selling unattractive
  const std::vector<double> emissions = {0.0, 0.0, 4.0};
  const auto plan =
      solve_offline_trading(make_context(3, 0.0, 10.0), buy, sell, emissions);
  ASSERT_TRUE(plan.feasible);
  EXPECT_NEAR(plan.buy[0], 4.0, 1e-6);
  EXPECT_NEAR(plan.buy[1] + plan.buy[2], 0.0, 1e-6);
  EXPECT_NEAR(plan.cost, 24.0, 1e-5);
}

TEST(OfflineLp, CannotBuyAfterTheFact) {
  // Emission at slot 0 with zero cap: must buy in slot 0 even though slot 1
  // is cheaper (prefix feasibility).
  const std::vector<double> buy = {10.0, 1.0};
  const std::vector<double> sell = {0.1, 0.1};
  const std::vector<double> emissions = {3.0, 0.0};
  const auto plan =
      solve_offline_trading(make_context(2, 0.0, 10.0), buy, sell, emissions);
  ASSERT_TRUE(plan.feasible);
  EXPECT_NEAR(plan.buy[0], 3.0, 1e-6);
}

TEST(OfflineLp, RespectsLiquidityCap) {
  const std::vector<double> buy = {5.0, 5.0};
  const std::vector<double> sell = {0.1, 0.1};
  const std::vector<double> emissions = {4.0, 4.0};
  const auto plan =
      solve_offline_trading(make_context(2, 0.0, 4.5), buy, sell, emissions);
  ASSERT_TRUE(plan.feasible);
  for (double z : plan.buy) EXPECT_LE(z, 4.5 + 1e-9);
}

TEST(OfflineLp, InfeasibleWhenCapTooTight) {
  // Emission 10 in slot 0 but can only buy 2 per slot: prefix constraint
  // at slot 0 cannot be met.
  const std::vector<double> buy = {5.0};
  const std::vector<double> sell = {4.5};
  const std::vector<double> emissions = {10.0};
  const auto plan =
      solve_offline_trading(make_context(1, 0.0, 2.0), buy, sell, emissions);
  EXPECT_FALSE(plan.feasible);
}

TEST(OfflineLp, ArbitrageWithinCaps) {
  // Buy at 5, later sell at 9 (sell price of a pricier slot): profitable,
  // bounded by the liquidity cap.
  const std::vector<double> buy = {5.0, 10.0};
  const std::vector<double> sell = {4.5, 9.0};
  const std::vector<double> emissions = {0.0, 0.0};
  const auto plan =
      solve_offline_trading(make_context(2, 0.0, 3.0), buy, sell, emissions);
  ASSERT_TRUE(plan.feasible);
  EXPECT_NEAR(plan.buy[0], 3.0, 1e-6);
  EXPECT_NEAR(plan.sell[1], 3.0, 1e-6);
  EXPECT_NEAR(plan.cost, 3.0 * 5.0 - 3.0 * 9.0, 1e-5);
}

TEST(OfflineLp, PlanSatisfiesNeutralityEverywhere) {
  const std::vector<double> buy = {7.0, 6.0, 9.0, 8.0};
  const std::vector<double> sell = {6.3, 5.4, 8.1, 7.2};
  const std::vector<double> emissions = {3.0, 5.0, 2.0, 6.0};
  const double cap = 4.0;
  const auto plan =
      solve_offline_trading(make_context(4, cap, 10.0), buy, sell, emissions);
  ASSERT_TRUE(plan.feasible);
  double balance = cap;
  for (std::size_t t = 0; t < 4; ++t) {
    balance += plan.buy[t] - plan.sell[t] - emissions[t];
    EXPECT_GE(balance, -1e-7) << "prefix " << t;
  }
}

TEST(OfflineLpTrader, ReplaysPlan) {
  OfflineTradingPlan plan;
  plan.buy = {1.0, 2.0};
  plan.sell = {0.0, 0.5};
  plan.feasible = true;
  OfflineLpTrader trader(plan);
  EXPECT_DOUBLE_EQ(trader.decide(0, {}).buy, 1.0);
  EXPECT_DOUBLE_EQ(trader.decide(1, {}).sell, 0.5);
  // Beyond the plan horizon: no trading.
  EXPECT_DOUBLE_EQ(trader.decide(5, {}).buy, 0.0);
}

}  // namespace
}  // namespace cea::trading
