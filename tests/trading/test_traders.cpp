#include <gtest/gtest.h>

#include <memory>

#include "trading/lyapunov_trader.h"
#include "trading/random_trader.h"
#include "trading/threshold_trader.h"
#include "trading/trader.h"

namespace cea::trading {
namespace {

TraderContext make_context() {
  TraderContext context;
  context.horizon = 100;
  context.carbon_cap = 200.0;
  context.max_trade_per_slot = 10.0;
  context.seed = 7;
  return context;
}

TEST(TradeDecision, CostAndNet) {
  const TradeDecision d{4.0, 1.0};
  const TradeObservation obs{8.0, 7.2};
  EXPECT_DOUBLE_EQ(d.net(), 3.0);
  EXPECT_DOUBLE_EQ(d.cost(obs), 4.0 * 8.0 - 1.0 * 7.2);
}

TEST(ClampTrade, Clamps) {
  const auto context = make_context();
  EXPECT_DOUBLE_EQ(clamp_trade(-1.0, context), 0.0);
  EXPECT_DOUBLE_EQ(clamp_trade(5.0, context), 5.0);
  EXPECT_DOUBLE_EQ(clamp_trade(100.0, context), 10.0);
}

TEST(RandomTrader, WithinBounds) {
  RandomTrader trader(make_context(), 10.0);
  const TradeObservation obs{8.0, 7.2};
  for (std::size_t t = 0; t < 200; ++t) {
    const auto d = trader.decide(t, obs);
    EXPECT_GE(d.buy, 0.0);
    EXPECT_LE(d.buy, 10.0);
    EXPECT_GE(d.sell, 0.0);
    EXPECT_LE(d.sell, 10.0);
    trader.feedback(t, 2.0, obs, d);
  }
}

TEST(RandomTrader, IgnoresPrices) {
  RandomTrader a(make_context(), 10.0), b(make_context(), 10.0);
  const auto da = a.decide(0, {5.9, 5.3});
  const auto db = b.decide(0, {10.9, 9.8});
  EXPECT_DOUBLE_EQ(da.buy, db.buy);  // same seed, price-independent
}

TEST(ThresholdTrader, BuysOnlyBelowThreshold) {
  ThresholdTrader trader(make_context(), 7.0, 8.0, 5.0);
  EXPECT_DOUBLE_EQ(trader.decide(0, {6.5, 5.85}).buy, 5.0);
  EXPECT_DOUBLE_EQ(trader.decide(1, {7.5, 6.75}).buy, 0.0);
}

TEST(ThresholdTrader, SellsOnlyAboveThreshold) {
  ThresholdTrader trader(make_context(), 7.0, 8.0, 5.0);
  EXPECT_DOUBLE_EQ(trader.decide(0, {9.5, 8.55}).sell, 5.0);
  EXPECT_DOUBLE_EQ(trader.decide(1, {8.5, 7.65}).sell, 0.0);
}

TEST(ThresholdTrader, QuantityClampedToCap) {
  ThresholdTrader trader(make_context(), 7.0, 8.0, 50.0);
  EXPECT_DOUBLE_EQ(trader.decide(0, {6.0, 5.4}).buy, 10.0);
}

TEST(LyapunovTrader, QueueGrowsWithUncoveredEmission) {
  auto context = make_context();
  LyapunovTrader trader(context, 2.0, 10.0);
  const TradeObservation obs{8.0, 7.2};
  // cap share = 200/100 = 2; emission 5 with no trade -> queue += 3.
  trader.feedback(0, 5.0, obs, {});
  EXPECT_NEAR(trader.queue(), 3.0, 1e-12);
  trader.feedback(1, 5.0, obs, {});
  EXPECT_NEAR(trader.queue(), 6.0, 1e-12);
}

TEST(LyapunovTrader, QueueNonNegative) {
  LyapunovTrader trader(make_context(), 2.0, 10.0);
  trader.feedback(0, 0.0, {8.0, 7.2}, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(trader.queue(), 0.0);
}

TEST(LyapunovTrader, BuysWhenQueueLarge) {
  LyapunovTrader trader(make_context(), 1.0, 10.0);
  const TradeObservation obs{8.0, 7.2};
  // Push the queue above V * c = 8.
  for (std::size_t t = 0; t < 5; ++t) trader.feedback(t, 5.0, obs, {});
  EXPECT_GT(trader.queue(), 8.0);
  const auto d = trader.decide(5, obs);
  EXPECT_DOUBLE_EQ(d.buy, 10.0);
  EXPECT_DOUBLE_EQ(d.sell, 0.0);
}

TEST(LyapunovTrader, SellsWhenQueueSmall) {
  LyapunovTrader trader(make_context(), 1.0, 10.0);
  const auto d = trader.decide(0, {8.0, 7.2});
  // Queue 0 < V*r: sell, don't buy.
  EXPECT_DOUBLE_EQ(d.sell, 10.0);
  EXPECT_DOUBLE_EQ(d.buy, 0.0);
}

TEST(LyapunovTrader, BuyingReducesQueue) {
  LyapunovTrader trader(make_context(), 1.0, 10.0);
  const TradeObservation obs{8.0, 7.2};
  for (std::size_t t = 0; t < 5; ++t) trader.feedback(t, 5.0, obs, {});
  const double before = trader.queue();
  trader.feedback(5, 5.0, obs, {10.0, 0.0});
  EXPECT_LT(trader.queue(), before);
}

TEST(Factories, ProduceWorkingTraders) {
  const auto context = make_context();
  std::vector<TraderFactory> factories = {
      RandomTrader::factory(),
      ThresholdTrader::factory(),
      LyapunovTrader::factory(),
  };
  for (auto& factory : factories) {
    auto trader = factory(context);
    ASSERT_NE(trader, nullptr);
    const TradeObservation obs{8.0, 7.2};
    for (std::size_t t = 0; t < 20; ++t) {
      const auto d = trader->decide(t, obs);
      EXPECT_GE(d.buy, 0.0);
      EXPECT_GE(d.sell, 0.0);
      trader->feedback(t, 2.0, obs, d);
    }
    EXPECT_FALSE(trader->name().empty());
  }
}

}  // namespace
}  // namespace cea::trading
