// util::Arena contract tests: alignment, bump behavior, reset/reuse, and
// the capacity-exhaustion fallback (release builds overflow to dedicated
// heap blocks and count the event; debug builds assert — the death test
// below only runs when asserts are live).
#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

namespace cea::util {
namespace {

bool aligned_to(const void* p, std::size_t align) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena(1024);
  auto* a = arena.alloc_array<double>(10);
  auto* b = arena.alloc_array<char>(3);
  auto* c = arena.alloc_array<double>(5);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(aligned_to(a, alignof(double)));
  EXPECT_TRUE(aligned_to(c, alignof(double)));
  // Writing every byte of each allocation must not bleed into the others.
  std::memset(a, 0xAA, 10 * sizeof(double));
  std::memset(b, 0xBB, 3);
  std::memset(c, 0xCC, 5 * sizeof(double));
  EXPECT_EQ(static_cast<unsigned char>(reinterpret_cast<char*>(a)[0]), 0xAA);
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0xBB);
  EXPECT_EQ(arena.overflow_count(), 0u);
  EXPECT_LE(arena.used(), arena.capacity());
}

TEST(Arena, WideAlignmentRequestsAreHonored) {
  Arena arena(4096);
  arena.alloc_array<char>(1);  // misalign the bump pointer
  void* p = arena.allocate(128, 64);
  EXPECT_TRUE(aligned_to(p, 64));
  EXPECT_EQ(arena.overflow_count(), 0u);
}

TEST(Arena, ResetRecyclesTheBlockWithoutGrowth) {
  Arena arena(512);
  void* first = arena.allocate(256, 8);
  const std::size_t used_after_first = arena.used();
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  void* second = arena.allocate(256, 8);
  // Same block, same offset: reset really recycles.
  EXPECT_EQ(first, second);
  EXPECT_EQ(arena.used(), used_after_first);
  EXPECT_EQ(arena.overflow_count(), 0u);
  EXPECT_EQ(arena.capacity(), 512u);
}

TEST(Arena, HighWaterTracksLargestUse) {
  Arena arena(1024);
  arena.allocate(100, 8);
  arena.allocate(200, 8);
  const std::size_t peak = arena.used();
  arena.reset();
  arena.allocate(50, 8);
  EXPECT_EQ(arena.high_water(), peak);
  EXPECT_GE(peak, 300u);
}

TEST(Arena, ReserveBelowCapacityIsANoOp) {
  Arena arena(1024);
  arena.reserve(16);
  EXPECT_EQ(arena.capacity(), 1024u);
  arena.reserve(2048);
  EXPECT_EQ(arena.capacity(), 2048u);
}

#if defined(NDEBUG)
// Release-build fallback: exhaustion stays correct (fresh heap block,
// aligned, disjoint from the arena block) and is counted.
TEST(Arena, ExhaustionFallsBackToOverflowBlocks) {
  Arena arena(64);
  arena.allocate(64, 8);
  auto* over = arena.alloc_array<double>(32);
  ASSERT_NE(over, nullptr);
  EXPECT_TRUE(aligned_to(over, alignof(double)));
  std::memset(over, 0x11, 32 * sizeof(double));
  EXPECT_EQ(arena.overflow_count(), 1u);
  arena.allocate(1024, 8);
  EXPECT_EQ(arena.overflow_count(), 2u);
  // reset() frees the overflow blocks but keeps the cumulative count: the
  // counter is the "did we ever mis-size" signal perf_solver gates on.
  arena.reset();
  EXPECT_EQ(arena.overflow_count(), 2u);
  EXPECT_EQ(arena.used(), 0u);
}
#else
// Debug builds assert on exhaustion (mis-sized arena is a caller bug).
TEST(ArenaDeathTest, ExhaustionAssertsInDebug) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Arena arena(16);
  arena.allocate(16, 8);
  EXPECT_DEATH(arena.allocate(64, 8), "exhausted");
}
#endif

TEST(Arena, ZeroByteAllocationIsValid) {
  Arena arena(64);
  void* p = arena.allocate(0, 8);
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(arena.overflow_count(), 0u);
}

}  // namespace
}  // namespace cea::util
