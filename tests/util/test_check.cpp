#include "util/check.h"

#include <gtest/gtest.h>

namespace cea::audit {
namespace {

// The collector is process-global; every test starts from a clean slate
// with the default capacity.
class CheckCollector : public ::testing::Test {
 protected:
  void SetUp() override {
    set_capacity(kDefaultCapacity);
    clear();
  }
  void TearDown() override {
    set_capacity(kDefaultCapacity);
    clear();
  }
};

TEST_F(CheckCollector, StartsEmpty) {
  EXPECT_EQ(violation_count(), 0u);
  EXPECT_TRUE(drain().empty());
}

TEST_F(CheckCollector, RecordAccumulates) {
  record({"site.a", "first", 2, 7, 1.5});
  record({"site.b", "second"});
  EXPECT_EQ(violation_count(), 2u);
}

TEST_F(CheckCollector, DrainReturnsAndClears) {
  record({"site.a", "msg", 1, 3, -0.5});
  const auto violations = drain();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].site, "site.a");
  EXPECT_EQ(violations[0].message, "msg");
  EXPECT_EQ(violations[0].edge, 1u);
  EXPECT_EQ(violations[0].slot, 3u);
  EXPECT_DOUBLE_EQ(violations[0].quantity, -0.5);
  EXPECT_EQ(violation_count(), 0u);
  EXPECT_TRUE(drain().empty());
}

TEST_F(CheckCollector, ClearDiscards) {
  record({"site.a", "msg"});
  clear();
  EXPECT_EQ(violation_count(), 0u);
}

TEST_F(CheckCollector, DefaultContextIsNoIndex) {
  record({"site.a", "msg"});
  const auto violations = drain();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].edge, kNoIndex);
  EXPECT_EQ(violations[0].slot, kNoIndex);
}

TEST_F(CheckCollector, MacroMatchesBuildConfiguration) {
  // In a default build the macro must vanish entirely: the condition and
  // the message stream are not evaluated. Under -DCEA_AUDIT=ON a failing
  // condition records exactly one violation.
  int evaluations = 0;
  auto touch = [&evaluations]() {
    ++evaluations;
    return false;
  };
  CEA_CHECK(touch(), "test.macro", 4, 9, 2.5, "value " << 2.5);
  if (enabled()) {
    EXPECT_EQ(evaluations, 1);
    const auto violations = drain();
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].site, "test.macro");
    EXPECT_EQ(violations[0].edge, 4u);
    EXPECT_EQ(violations[0].slot, 9u);
    EXPECT_DOUBLE_EQ(violations[0].quantity, 2.5);
    EXPECT_EQ(violations[0].message, "value 2.5");
  } else {
    EXPECT_EQ(evaluations, 0);
    EXPECT_EQ(violation_count(), 0u);
  }
}

TEST_F(CheckCollector, MacroPassingConditionRecordsNothing) {
  CEA_CHECK(true, "test.pass", 0, 0, 0.0, "never");
  EXPECT_EQ(violation_count(), 0u);
}

TEST_F(CheckCollector, CapBoundsStorageAndCountsDrops) {
  set_capacity(3);
  EXPECT_EQ(capacity(), 3u);
  for (int i = 0; i < 5; ++i)
    record({"site.cap", "violation " + std::to_string(i)});
  // The first capacity() records are kept; the rest are counted, not stored.
  EXPECT_EQ(violation_count(), 3u);
  EXPECT_EQ(dropped_count(), 2u);
  const auto violations = drain();
  ASSERT_EQ(violations.size(), 3u);
  EXPECT_EQ(violations[0].message, "violation 0");
  EXPECT_EQ(violations[2].message, "violation 2");
}

TEST_F(CheckCollector, DrainResetsDroppedCount) {
  set_capacity(1);
  record({"site.a", "kept"});
  record({"site.a", "dropped"});
  EXPECT_EQ(dropped_count(), 1u);
  drain();
  EXPECT_EQ(dropped_count(), 0u);
  // After the drain the collector has room again.
  record({"site.a", "kept again"});
  EXPECT_EQ(violation_count(), 1u);
  EXPECT_EQ(dropped_count(), 0u);
}

TEST_F(CheckCollector, ClearResetsDroppedCount) {
  set_capacity(1);
  record({"site.a", "kept"});
  record({"site.a", "dropped"});
  clear();
  EXPECT_EQ(violation_count(), 0u);
  EXPECT_EQ(dropped_count(), 0u);
}

TEST_F(CheckCollector, ZeroCapacityClampsToOne) {
  set_capacity(0);
  EXPECT_EQ(capacity(), 1u);
  record({"site.a", "kept"});
  record({"site.a", "dropped"});
  EXPECT_EQ(violation_count(), 1u);
  EXPECT_EQ(dropped_count(), 1u);
}

TEST_F(CheckCollector, ShrinkingCapacityKeepsStoredEntries) {
  record({"site.a", "one"});
  record({"site.a", "two"});
  set_capacity(1);
  // Existing entries survive; only future records are refused.
  EXPECT_EQ(violation_count(), 2u);
  record({"site.a", "three"});
  EXPECT_EQ(violation_count(), 2u);
  EXPECT_EQ(dropped_count(), 1u);
}

}  // namespace
}  // namespace cea::audit
