#include "util/check.h"

#include <gtest/gtest.h>

namespace cea::audit {
namespace {

// The collector is process-global; every test starts from a clean slate.
class CheckCollector : public ::testing::Test {
 protected:
  void SetUp() override { clear(); }
  void TearDown() override { clear(); }
};

TEST_F(CheckCollector, StartsEmpty) {
  EXPECT_EQ(violation_count(), 0u);
  EXPECT_TRUE(drain().empty());
}

TEST_F(CheckCollector, RecordAccumulates) {
  record({"site.a", "first", 2, 7, 1.5});
  record({"site.b", "second"});
  EXPECT_EQ(violation_count(), 2u);
}

TEST_F(CheckCollector, DrainReturnsAndClears) {
  record({"site.a", "msg", 1, 3, -0.5});
  const auto violations = drain();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].site, "site.a");
  EXPECT_EQ(violations[0].message, "msg");
  EXPECT_EQ(violations[0].edge, 1u);
  EXPECT_EQ(violations[0].slot, 3u);
  EXPECT_DOUBLE_EQ(violations[0].quantity, -0.5);
  EXPECT_EQ(violation_count(), 0u);
  EXPECT_TRUE(drain().empty());
}

TEST_F(CheckCollector, ClearDiscards) {
  record({"site.a", "msg"});
  clear();
  EXPECT_EQ(violation_count(), 0u);
}

TEST_F(CheckCollector, DefaultContextIsNoIndex) {
  record({"site.a", "msg"});
  const auto violations = drain();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].edge, kNoIndex);
  EXPECT_EQ(violations[0].slot, kNoIndex);
}

TEST_F(CheckCollector, MacroMatchesBuildConfiguration) {
  // In a default build the macro must vanish entirely: the condition and
  // the message stream are not evaluated. Under -DCEA_AUDIT=ON a failing
  // condition records exactly one violation.
  int evaluations = 0;
  auto touch = [&evaluations]() {
    ++evaluations;
    return false;
  };
  CEA_CHECK(touch(), "test.macro", 4, 9, 2.5, "value " << 2.5);
  if (enabled()) {
    EXPECT_EQ(evaluations, 1);
    const auto violations = drain();
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].site, "test.macro");
    EXPECT_EQ(violations[0].edge, 4u);
    EXPECT_EQ(violations[0].slot, 9u);
    EXPECT_DOUBLE_EQ(violations[0].quantity, 2.5);
    EXPECT_EQ(violations[0].message, "value 2.5");
  } else {
    EXPECT_EQ(evaluations, 0);
    EXPECT_EQ(violation_count(), 0u);
  }
}

TEST_F(CheckCollector, MacroPassingConditionRecordsNothing) {
  CEA_CHECK(true, "test.pass", 0, 0, 0.0, "never");
  EXPECT_EQ(violation_count(), 0u);
}

}  // namespace
}  // namespace cea::audit
