#include "util/csv.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace cea {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  // Unique file per test: parallel ctest runs tests concurrently.
  void SetUp() override {
    path_ = ::testing::TempDir() + "cea_csv_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST(CsvEscape, PlainPassThrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, QuotesCommas) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, DoublesQuotes) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, QuotesNewlines) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST_F(CsvTest, WritesRows) {
  {
    CsvWriter writer(path_);
    writer.write_row({"t", "cost"});
    writer.write_row({"1", "2.5"});
  }
  EXPECT_EQ(read_file(path_), "t,cost\n1,2.5\n");
}

TEST_F(CsvTest, WritesLabeledDoubles) {
  {
    CsvWriter writer(path_);
    writer.write_row("series", {1.0, 2.5});
  }
  EXPECT_EQ(read_file(path_), "series,1,2.5\n");
}

TEST_F(CsvTest, WritesVectorOfStrings) {
  {
    CsvWriter writer(path_);
    writer.write_row(std::vector<std::string>{"a,b", "c"});
  }
  EXPECT_EQ(read_file(path_), "\"a,b\",c\n");
}

TEST_F(CsvTest, ExactRowRoundTripsEveryBit) {
  // write_row_exact emits C99 hex-floats: strtod must recover the exact
  // bit pattern, including values that a decimal format would round.
  const std::vector<double> values = {
      0.1, 1.0 / 3.0, 6.02214076e23, -0.0, 5e-324 /* min subnormal */,
      std::nextafter(1.0, 2.0)};
  {
    CsvWriter writer(path_);
    writer.write_row_exact("row", values);
  }
  std::ifstream in(path_);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  std::istringstream cells(line);
  std::string cell;
  ASSERT_TRUE(std::getline(cells, cell, ','));
  EXPECT_EQ(cell, "row");
  for (double expected : values) {
    ASSERT_TRUE(std::getline(cells, cell, ','));
    const double parsed = std::strtod(cell.c_str(), nullptr);
    EXPECT_EQ(std::signbit(parsed), std::signbit(expected)) << cell;
    EXPECT_EQ(parsed, expected) << cell;
  }
}

TEST(CsvWriterErrors, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace cea
