#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <vector>

namespace cea {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(9);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent() == child());
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(8);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(2, 6));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 2);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntFullRange) {
  // The full int64 interval wraps the internal range computation to 0 and
  // takes the dedicated raw-word path; both halves must appear.
  Rng rng(23);
  bool saw_negative = false, saw_nonnegative = false;
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.uniform_int(std::numeric_limits<std::int64_t>::min(),
                                   std::numeric_limits<std::int64_t>::max());
    (v < 0 ? saw_negative : saw_nonnegative) = true;
  }
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_nonnegative);
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, PoissonMeanSmall) {
  Rng rng(14);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.08);
}

TEST(Rng, PoissonMeanLargeUsesNormalApprox) {
  Rng rng(15);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(500.0));
  EXPECT_NEAR(sum / n, 500.0, 2.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(16);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(17);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, CategoricalIgnoresNegativeWeights) {
  Rng rng(18);
  const std::vector<double> weights = {-5.0, 1.0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(rng.categorical(weights), 1u);
}

TEST(Rng, CategoricalAllZeroReturnsLastIndex) {
  Rng rng(19);
  const std::vector<double> weights = {0.0, 0.0, 0.0};
  EXPECT_EQ(rng.categorical(weights), 2u);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(20);
  const auto perm = rng.permutation(100);
  std::vector<bool> seen(100, false);
  for (auto v : perm) {
    ASSERT_LT(v, 100u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Rng, PermutationUniformFirstElement) {
  Rng rng(21);
  std::vector<int> first_counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++first_counts[rng.permutation(4)[0]];
  for (int c : first_counts)
    EXPECT_NEAR(c / 40000.0, 0.25, 0.02);
}

TEST(Rng, PermutationEmpty) {
  Rng rng(22);
  EXPECT_TRUE(rng.permutation(0).empty());
}

}  // namespace
}  // namespace cea
