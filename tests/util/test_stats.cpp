#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace cea {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.5, -3.0, 7.25, 0.0, 4.5};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_NEAR(s.mean(), mean_of(xs), 1e-12);
  EXPECT_NEAR(s.stddev(), stddev_of(xs), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.25);
  EXPECT_NEAR(s.sum(), 12.25, 1e-12);
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  RunningStats a, b, combined;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 3.0 + i * 0.01;
    if (i % 2 == 0) a.add(x); else b.add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  RunningStats c;
  c.merge(a);
  EXPECT_DOUBLE_EQ(c.mean(), mean_before);
}

TEST(Ema, SeedsWithFirstValue) {
  Ema e(0.5);
  EXPECT_TRUE(e.empty());
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ema, Smooths) {
  Ema e(0.5);
  e.add(0.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.5);
}

TEST(Stats, MeanOfEmpty) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(Stats, StddevOfSmall) {
  EXPECT_DOUBLE_EQ(stddev_of({}), 0.0);
  const std::vector<double> one = {5.0};
  EXPECT_DOUBLE_EQ(stddev_of(one), 0.0);
}

TEST(Stats, PercentileEndpointsAndMedian) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.5), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.25), 2.5);
}

TEST(Stats, PercentileClampsQ) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile_of(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 2.0), 2.0);
}

TEST(Stats, CumulativeSum) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const auto cs = cumulative_sum(xs);
  ASSERT_EQ(cs.size(), 3u);
  EXPECT_DOUBLE_EQ(cs[0], 1.0);
  EXPECT_DOUBLE_EQ(cs[1], 3.0);
  EXPECT_DOUBLE_EQ(cs[2], 6.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg = ys;
  for (auto& v : neg) v = -v;
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerate) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const std::vector<double> ys = {2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
  EXPECT_DOUBLE_EQ(pearson(xs, {}), 0.0);
}

}  // namespace
}  // namespace cea
