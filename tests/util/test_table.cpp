#include "util/table.h"

#include <gtest/gtest.h>

namespace cea {
namespace {

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Table, HeaderOnly) {
  Table t({"a", "bb"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_EQ(t.rows(), 0u);
}

TEST(Table, AlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  const std::string s = t.to_string();
  // Every line should place column 2 at the same offset.
  const auto first_line_end = s.find('\n');
  ASSERT_NE(first_line_end, std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
}

TEST(Table, NumericRowHelper) {
  Table t({"algo", "cost", "fit"});
  t.add_row("Ours", {12.3456, 0.0}, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("12.35"), std::string::npos);
  EXPECT_NE(s.find("0.00"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NO_THROW(t.to_string());
}

}  // namespace
}  // namespace cea
