#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace cea::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyAndSingleton) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "no indices expected"; });
  int calls = 0;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, IndexAddressedWritesMatchSerial) {
  ThreadPool pool(3);
  const std::size_t n = 1000;
  std::vector<double> out(n, 0.0);
  pool.parallel_for(n, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 0.5);
}

TEST(ThreadPool, ReentrantCallRunsInline) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(8, [&](std::size_t outer) {
    // A nested parallel_for from inside a job must not deadlock.
    pool.parallel_for(8, [&](std::size_t inner) {
      hits[outer * 8 + inner].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(10, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 45);
  }
}

TEST(ThreadPool, ConcurrencyCapStillCompletes) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); },
                    /*max_concurrency=*/2);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  std::atomic<int> sum{0};
  a.parallel_for(5, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i) + 1);
  });
  EXPECT_EQ(sum.load(), 15);
}

}  // namespace
}  // namespace cea::util
