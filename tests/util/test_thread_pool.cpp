#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

namespace cea::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyAndSingleton) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "no indices expected"; });
  int calls = 0;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, IndexAddressedWritesMatchSerial) {
  ThreadPool pool(3);
  const std::size_t n = 1000;
  std::vector<double> out(n, 0.0);
  pool.parallel_for(n, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 0.5);
}

TEST(ThreadPool, ReentrantCallRunsInline) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(8, [&](std::size_t outer) {
    // A nested parallel_for from inside a job must not deadlock.
    pool.parallel_for(8, [&](std::size_t inner) {
      hits[outer * 8 + inner].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(10, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 45);
  }
}

TEST(ThreadPool, ConcurrencyCapStillCompletes) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); },
                    /*max_concurrency=*/2);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// --- parallel_for_blocked (contiguous shards, one claim per shard) ------

TEST(ThreadPoolBlocked, CoversEveryIndexExactlyOnceForAnyGrain) {
  ThreadPool pool(4);
  const std::size_t n = 1013;  // prime: exercises the short last shard
  for (std::size_t grain : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                            std::size_t{256}, n, 2 * n}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for_blocked(n, grain, [&](std::size_t begin,
                                            std::size_t end) {
      ASSERT_LT(begin, end);
      ASSERT_LE(end, n);
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "grain " << grain;
  }
}

TEST(ThreadPoolBlocked, ShardsAreContiguousAndGrainSized) {
  ThreadPool pool(3);
  const std::size_t n = 100, grain = 9;
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> shards;
  pool.parallel_for_blocked(n, grain, [&](std::size_t begin,
                                          std::size_t end) {
    std::lock_guard<std::mutex> lock(mutex);
    shards.emplace_back(begin, end);
  });
  std::sort(shards.begin(), shards.end());
  std::size_t next = 0;
  for (const auto& [begin, end] : shards) {
    EXPECT_EQ(begin, next);  // contiguous, no gap or overlap
    EXPECT_EQ(begin % grain, 0u);
    EXPECT_LE(end - begin, grain);
    next = end;
  }
  EXPECT_EQ(next, n);
}

TEST(ThreadPoolBlocked, EmptyRangeInvokesNothing) {
  ThreadPool pool(2);
  pool.parallel_for_blocked(0, 8, [](std::size_t, std::size_t) {
    FAIL() << "no shards expected";
  });
}

TEST(ThreadPoolBlocked, OneWriterPerShardMatchesSerial) {
  // The engine's usage pattern: each shard is the only writer of its index
  // range, results reduced after the call — identical to a serial loop.
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<double> out(n, 0.0);
  pool.parallel_for_blocked(n, 64, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i)
      out[i] = static_cast<double>(i) * 1.5 + 1.0;
  });
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 1.5 + 1.0);
}

TEST(ThreadPoolBlocked, ReentrantBlockedCallRunsInline) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for_blocked(8, 2, [&](std::size_t ob, std::size_t oe) {
    for (std::size_t outer = ob; outer < oe; ++outer) {
      pool.parallel_for_blocked(8, 3, [&](std::size_t ib, std::size_t ie) {
        for (std::size_t inner = ib; inner < ie; ++inner)
          hits[outer * 8 + inner].fetch_add(1);
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  std::atomic<int> sum{0};
  a.parallel_for(5, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i) + 1);
  });
  EXPECT_EQ(sum.load(), 15);
}

}  // namespace
}  // namespace cea::util
